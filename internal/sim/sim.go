// Package sim implements fault-free three-valued simulation of synchronous
// sequential circuits.
//
// Simulation follows the classical zero-delay synchronous model: at each
// time unit the primary-input vector and the current flip-flop state are
// applied, the combinational logic is evaluated in topological order, the
// primary outputs are sampled, and the flip-flop next state is captured
// from the D signals. Circuits start in the all-unknown state, matching
// the paper's assumption that every (expanded) sequence is applied from an
// unknown initial state.
package sim

import (
	"fmt"

	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// Simulator holds preallocated evaluation state for one circuit. It is not
// safe for concurrent use; create one Simulator per goroutine.
type Simulator struct {
	c      *netlist.Circuit
	csr    *netlist.CSR  // flat netlist view; the Step hot loop walks this
	values []logic.Value // per-signal values for the current time unit
}

// New returns a Simulator for c.
func New(c *netlist.Circuit) *Simulator {
	return &Simulator{
		c:      c,
		csr:    c.CSR(),
		values: make([]logic.Value, c.NumSignals()),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// InitialState returns the all-unknown flip-flop state.
func (s *Simulator) InitialState() []logic.Value {
	st := make([]logic.Value, s.c.NumDFFs())
	for i := range st {
		st[i] = logic.X
	}
	return st
}

// EvalGate computes the output of a gate of type t over the given input
// values using three-valued semantics.
func EvalGate(t netlist.GateType, in []logic.Value) logic.Value {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return in[0].Not()
	case netlist.And, netlist.Nand:
		v := in[0]
		for _, x := range in[1:] {
			v = v.And(x)
		}
		if t == netlist.Nand {
			v = v.Not()
		}
		return v
	case netlist.Or, netlist.Nor:
		v := in[0]
		for _, x := range in[1:] {
			v = v.Or(x)
		}
		if t == netlist.Nor {
			v = v.Not()
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v = v.Xor(x)
		}
		if t == netlist.Xnor {
			v = v.Not()
		}
		return v
	}
	panic(fmt.Sprintf("sim: unknown gate type %v", t))
}

// Step applies one input vector given the current flip-flop state. It
// writes the primary-output values into po, updates state in place to the
// next state, and returns po. Slices must have lengths NumPOs and NumDFFs;
// vec must have length NumPIs.
func (s *Simulator) Step(state []logic.Value, vec vectors.Vector, po []logic.Value) []logic.Value {
	c := s.c
	if len(vec) != c.NumPIs() {
		panic(fmt.Sprintf("sim: vector width %d, circuit has %d PIs", len(vec), c.NumPIs()))
	}
	vals := s.values
	for i, pi := range c.PIs {
		vals[pi] = vec[i]
	}
	for i, ff := range c.DFFs {
		vals[ff.Q] = state[i]
	}
	csr := s.csr
	for gi := 0; gi < len(csr.Out); gi++ {
		ins := csr.In[csr.InOff[gi]:csr.InOff[gi+1]]
		v := vals[ins[0]]
		switch csr.Type[gi] {
		case netlist.Buf:
		case netlist.Not:
			v = v.Not()
		case netlist.And:
			for _, in := range ins[1:] {
				v = v.And(vals[in])
			}
		case netlist.Nand:
			for _, in := range ins[1:] {
				v = v.And(vals[in])
			}
			v = v.Not()
		case netlist.Or:
			for _, in := range ins[1:] {
				v = v.Or(vals[in])
			}
		case netlist.Nor:
			for _, in := range ins[1:] {
				v = v.Or(vals[in])
			}
			v = v.Not()
		case netlist.Xor:
			for _, in := range ins[1:] {
				v = v.Xor(vals[in])
			}
		case netlist.Xnor:
			for _, in := range ins[1:] {
				v = v.Xor(vals[in])
			}
			v = v.Not()
		}
		vals[csr.Out[gi]] = v
	}
	for i, sig := range c.POs {
		po[i] = vals[sig]
	}
	for i, ff := range c.DFFs {
		state[i] = vals[ff.D]
	}
	return po
}

// Values returns the per-signal values computed by the most recent Step.
// The slice is owned by the Simulator and overwritten by the next Step.
func (s *Simulator) Values() []logic.Value { return s.values }

// Trace records the observable behaviour of a fault-free simulation run:
// the primary-output values and the flip-flop state after every time unit.
type Trace struct {
	// POs[u][i] is the value of primary output i at time unit u.
	POs [][]logic.Value
	// States[u][i] is the value of flip-flop i after the clock edge of
	// time unit u (i.e. the state entering time unit u+1).
	States [][]logic.Value
}

// Run simulates seq from the all-unknown state and returns the full trace.
func (s *Simulator) Run(seq vectors.Sequence) *Trace {
	tr := &Trace{
		POs:    make([][]logic.Value, len(seq)),
		States: make([][]logic.Value, len(seq)),
	}
	state := s.InitialState()
	for u, vec := range seq {
		po := make([]logic.Value, s.c.NumPOs())
		s.Step(state, vec, po)
		tr.POs[u] = po
		snapshot := make([]logic.Value, len(state))
		copy(snapshot, state)
		tr.States[u] = snapshot
	}
	return tr
}
