package sim

import (
	"testing"

	"seqbist/internal/bench"
	"seqbist/internal/iscas"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

func mustCircuit(t *testing.T, src, name string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvalGateTruthTables(t *testing.T) {
	z, o, x := logic.Zero, logic.One, logic.X
	cases := []struct {
		t    netlist.GateType
		in   []logic.Value
		want logic.Value
	}{
		{netlist.Buf, []logic.Value{o}, o},
		{netlist.Not, []logic.Value{o}, z},
		{netlist.And, []logic.Value{o, o, o}, o},
		{netlist.And, []logic.Value{o, z, x}, z},
		{netlist.Nand, []logic.Value{o, o}, z},
		{netlist.Nand, []logic.Value{z, x}, o},
		{netlist.Or, []logic.Value{z, z, z}, z},
		{netlist.Or, []logic.Value{z, x, o}, o},
		{netlist.Nor, []logic.Value{z, z}, o},
		{netlist.Nor, []logic.Value{x, z}, x},
		{netlist.Xor, []logic.Value{o, o}, z},
		{netlist.Xor, []logic.Value{o, z, o}, z},
		{netlist.Xor, []logic.Value{o, x}, x},
		{netlist.Xnor, []logic.Value{o, z}, z},
		{netlist.Xnor, []logic.Value{o, o}, o},
	}
	for _, c := range cases {
		if got := EvalGate(c.t, c.in); got != c.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

// TestCombinationalFullAdder exercises a known combinational truth table
// through the sequential Step machinery (no DFFs).
func TestCombinationalFullAdder(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
axb = XOR(a, b)
sum = XOR(axb, cin)
ab = AND(a, b)
ac = AND(axb, cin)
cout = OR(ab, ac)
`
	c := mustCircuit(t, src, "fa")
	s := New(c)
	state := s.InitialState()
	po := make([]logic.Value, 2)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for cin := 0; cin < 2; cin++ {
				vec := vectors.Vector{logic.FromBit(a), logic.FromBit(b), logic.FromBit(cin)}
				s.Step(state, vec, po)
				sum, cout := (a+b+cin)&1, (a+b+cin)>>1
				if po[0] != logic.FromBit(sum) || po[1] != logic.FromBit(cout) {
					t.Errorf("adder(%d,%d,%d) = %v,%v; want %d,%d", a, b, cin, po[0], po[1], sum, cout)
				}
			}
		}
	}
}

func TestS27FirstTwoTimeUnits(t *testing.T) {
	// Hand-computed three-valued simulation of the paper's Table 2
	// sequence on s27: after 0111 from the all-X state the PO (G17) is
	// still X and the state is (G5,G6,G7) = (0,X,0); after the following
	// 1001 the PO is 0 and the state is (0,1,0).
	c := iscas.S27()
	s := New(c)
	state := s.InitialState()
	po := make([]logic.Value, 1)

	s.Step(state, vectors.MustParseVector("0111"), po)
	if po[0] != logic.X {
		t.Errorf("PO after 0111 = %v, want X", po[0])
	}
	wantState := []logic.Value{logic.Zero, logic.X, logic.Zero}
	for i, w := range wantState {
		if state[i] != w {
			t.Errorf("state[%d] after 0111 = %v, want %v", i, state[i], w)
		}
	}

	s.Step(state, vectors.MustParseVector("1001"), po)
	if po[0] != logic.Zero {
		t.Errorf("PO after 1001 = %v, want 0", po[0])
	}
	wantState = []logic.Value{logic.Zero, logic.One, logic.Zero}
	for i, w := range wantState {
		if state[i] != w {
			t.Errorf("state[%d] after 1001 = %v, want %v", i, state[i], w)
		}
	}
}

func TestRunTraceShape(t *testing.T) {
	c := iscas.S27()
	s := New(c)
	seq := vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
	tr := s.Run(seq)
	if len(tr.POs) != seq.Len() || len(tr.States) != seq.Len() {
		t.Fatalf("trace lengths %d/%d, want %d", len(tr.POs), len(tr.States), seq.Len())
	}
	for u := range tr.POs {
		if len(tr.POs[u]) != c.NumPOs() {
			t.Fatalf("PO row %d has %d entries", u, len(tr.POs[u]))
		}
		if len(tr.States[u]) != c.NumDFFs() {
			t.Fatalf("state row %d has %d entries", u, len(tr.States[u]))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	c := iscas.S27()
	seq := vectors.MustParseSequence("0111 1001 0100 1011")
	a := New(c).Run(seq)
	b := New(c).Run(seq)
	for u := range a.POs {
		for i := range a.POs[u] {
			if a.POs[u][i] != b.POs[u][i] {
				t.Fatalf("PO trace differs at u=%d", u)
			}
		}
	}
}

// TestXStatePessimism verifies that values stay X while the state is
// unresolved: a DFF looping through a buffer never synchronizes.
func TestXStatePessimism(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = BUFF(q)
y = XOR(a, q)
`
	c := mustCircuit(t, src, "loop")
	s := New(c)
	seq := vectors.MustParseSequence("0 1 0 1 1")
	tr := s.Run(seq)
	for u := range tr.POs {
		if tr.POs[u][0] != logic.X {
			t.Errorf("u=%d: PO = %v, want X (state can never synchronize)", u, tr.POs[u][0])
		}
	}
}

// TestSynchronizingReset verifies that an AND-gated feedback loop
// synchronizes when the controlling input is applied.
func TestSynchronizingReset(t *testing.T) {
	src := `
INPUT(en)
OUTPUT(y)
q = DFF(d)
d = AND(en, nq)
nq = NOT(q)
y = BUFF(q)
`
	c := mustCircuit(t, src, "sync")
	s := New(c)
	// en=0 forces d=0 regardless of the X state, so after one step the
	// state is known.
	tr := s.Run(vectors.MustParseSequence("0 1 1 1"))
	if tr.POs[0][0] != logic.X {
		t.Errorf("u=0: PO = %v, want X", tr.POs[0][0])
	}
	want := []logic.Value{logic.Zero, logic.One, logic.Zero} // q toggles once enabled
	for u := 1; u < 4; u++ {
		if tr.POs[u][0] != want[u-1] {
			t.Errorf("u=%d: PO = %v, want %v", u, tr.POs[u][0], want[u-1])
		}
	}
}

func TestStepPanicsOnWrongWidth(t *testing.T) {
	c := iscas.S27()
	s := New(c)
	defer func() {
		if recover() == nil {
			t.Fatal("Step with wrong vector width did not panic")
		}
	}()
	s.Step(s.InitialState(), vectors.MustParseVector("01"), make([]logic.Value, 1))
}

func TestStepMatchesEvalGate(t *testing.T) {
	// Cross-check the inlined Step gate evaluation against EvalGate on a
	// synthesized circuit with every gate type.
	c := iscas.MustLoad("s344")
	s := New(c)
	state := s.InitialState()
	po := make([]logic.Value, c.NumPOs())
	vec := vectors.RandomSequence(newTestRNG(), c.NumPIs(), 1)[0]
	s.Step(state, vec, po)
	vals := s.Values()
	in := make([]logic.Value, 0, 8)
	for gi := range c.Gates {
		g := &c.Gates[gi]
		in = in[:0]
		for _, sig := range g.In {
			in = append(in, vals[sig])
		}
		if want := EvalGate(g.Type, in); vals[g.Out] != want {
			t.Fatalf("gate %d (%v): Step computed %v, EvalGate %v", gi, g.Type, vals[g.Out], want)
		}
	}
}
