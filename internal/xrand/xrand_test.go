package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// SplitMix64 reference outputs for seed 0 (from the reference
	// implementation by Sebastiano Vigna).
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Errorf("output %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 63, 64, 65, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(11)
	seen := make(map[int]int)
	const n = 8
	for i := 0; i < 4000; i++ {
		seen[r.Intn(n)]++
	}
	for v := 0; v < n; v++ {
		if seen[v] == 0 {
			t.Errorf("value %d never drawn from Intn(%d)", v, n)
		}
		// A grossly non-uniform generator would fail this loose bound.
		if seen[v] < 4000/n/4 {
			t.Errorf("value %d drawn only %d times, suspiciously rare", v, seen[v])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 64, 200} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermVaries(t *testing.T) {
	r := New(19)
	identical := 0
	prev := r.Perm(20)
	for i := 0; i < 20; i++ {
		p := r.Perm(20)
		same := true
		for j := range p {
			if p[j] != prev[j] {
				same = false
				break
			}
		}
		if same {
			identical++
		}
		prev = p
	}
	if identical > 0 {
		t.Errorf("%d consecutive identical permutations of 20 elements", identical)
	}
}

func TestForkIndependence(t *testing.T) {
	base := New(23)
	a := base.Fork(1)
	b := base.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked streams collided %d/100 times", same)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against the identity via math/bits-free decomposition:
		// reconstruct lo independently and check hi against long division
		// by shifting.
		if lo != a*b {
			return false
		}
		// Check hi via per-bit accumulation on small shifted values.
		var wantHi uint64
		x, y := a, b
		var acc [2]uint64 // 128-bit accumulator (lo, hi)
		for i := 0; i < 64; i++ {
			if y&1 == 1 {
				// acc += x << i as 128-bit
				loPart := x << i
				var hiPart uint64
				if i > 0 {
					hiPart = x >> (64 - i)
				}
				old := acc[0]
				acc[0] += loPart
				if acc[0] < old {
					acc[1]++
				}
				acc[1] += hiPart
			}
			y >>= 1
		}
		wantHi = acc[1]
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
