// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout seqbist.
//
// The generator is SplitMix64 (Steele, Lea, Flood; "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). It is chosen over
// math/rand because its output is fully specified by this package alone:
// experiment results remain bit-identical across Go releases, which matters
// when EXPERIMENTS.md records exact table rows. Procedures in the paper
// (Procedure 2's random omission order, the ATPG's candidate pools, the
// synthetic benchmark generator) all draw from independent xrand streams
// seeded from the experiment configuration.
package xrand

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from r. The derived stream is a
// function of both r's current state and the supplied label, so multiple
// subsystems can fork from one configuration seed without correlation.
func (r *RNG) Fork(label uint64) *RNG {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, debiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly distributed boolean.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place using the Fisher-Yates algorithm.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
