package bench_test

import (
	"fmt"
	"strings"

	"seqbist/internal/bench"
)

// ExampleParseString parses a tiny synchronous circuit from .bench source
// — the format every user-supplied netlist arrives in, whether through
// `seqbist -bench`, the POST /v1/jobs upload path, or a sweep member.
func ExampleParseString() {
	src := `
# a 2-bit shift register with an XOR tap
INPUT(d)
OUTPUT(q)
ff1 = DFF(d)
ff2 = DFF(ff1)
q = XOR(ff1, ff2)
`
	c, err := bench.ParseString(src, "shifter")
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Println(c.Stats())
	// Output:
	// shifter: 1 PIs, 1 POs, 2 DFFs, 1 gates, depth 1
}

// ExampleParseLimited shows the hardened parse used for untrusted input:
// the same format, but with byte and signal budgets that reject oversized
// netlists before they are built. The service's upload endpoints parse
// with bench.UploadLimits and surface these errors as HTTP 400s.
func ExampleParseLimited() {
	src := "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n"
	lim := bench.Limits{MaxBytes: 16, MaxSignals: 100} // far too small
	_, err := bench.ParseLimited(strings.NewReader(src), "upload", lim)
	fmt.Println(err)
	// Output:
	// bench: input exceeds size limit (more than 16 bytes)
}
