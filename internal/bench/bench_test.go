package bench

import (
	"strings"
	"testing"
)

const s27Source = `
# s27 benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)

OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func TestParseS27(t *testing.T) {
	c, err := ParseString(s27Source, "s27")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPIs() != 4 || c.NumPOs() != 1 || c.NumDFFs() != 3 || c.NumGates() != 10 {
		t.Errorf("structure: %v", c.Stats())
	}
	if c.Name != "s27" {
		t.Errorf("name = %q", c.Name)
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(s27Source, "s27")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(c)
	c2, err := ParseString(text, "s27")
	if err != nil {
		t.Fatalf("re-parsing emitted bench: %v\n%s", err, text)
	}
	if Fingerprint(c) != Fingerprint(c2) {
		t.Errorf("fingerprint mismatch after round trip:\n%s\nvs\n%s",
			Fingerprint(c), Fingerprint(c2))
	}
}

func TestCommentsAndWhitespaceTolerated(t *testing.T) {
	src := `
  # leading comment
	INPUT( a )
OUTPUT(y)   # trailing comment
y   =  NAND( a ,a )
`
	c, err := ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 || c.Gates[0].Type.String() != "NAND" {
		t.Errorf("unexpected parse: %v", c.Stats())
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	src := `
input(a)
output(y)
q = dff(y)
y = nand(a, q)
`
	c, err := ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDFFs() != 1 || c.NumGates() != 1 {
		t.Errorf("structure: %v", c.Stats())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing paren input", "INPUT a\nOUTPUT(y)\ny = NOT(a)"},
		{"empty input arg", "INPUT()\nOUTPUT(y)\ny = NOT(a)"},
		{"no assignment", "INPUT(a)\nOUTPUT(y)\nNOT(a)"},
		{"bad gate", "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)"},
		{"malformed rhs", "INPUT(a)\nOUTPUT(y)\ny = NOT a"},
		{"empty operand", "INPUT(a)\nOUTPUT(y)\ny = AND(a, )"},
		{"dff two inputs", "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)"},
		{"empty lhs", "INPUT(a)\nOUTPUT(y)\n = NOT(a)"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, "bad"); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestParseReportsLineNumber(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = WHAT(a)\n"
	_, err := ParseString(src, "bad")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not carry line number", err)
	}
}

func TestWriteHeaderCounts(t *testing.T) {
	c, err := ParseString(s27Source, "s27")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(c)
	if !strings.Contains(text, "4 inputs, 1 outputs, 3 D-type flipflops, 10 gates") {
		t.Errorf("header missing counts:\n%s", text)
	}
}

func TestFingerprintDistinguishesCircuits(t *testing.T) {
	a, _ := ParseString("INPUT(a)\nOUTPUT(y)\ny = NOT(a)", "a")
	b, _ := ParseString("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)", "b")
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("different circuits share a fingerprint")
	}
}

// TestParseGarbageNeverPanics feeds pseudo-random byte soup to the
// parser: it must return an error or a circuit, never panic.
func TestParseGarbageNeverPanics(t *testing.T) {
	pieces := []string{
		"INPUT(", ")", "OUTPUT", "=", "DFF", "AND", "(", ",", "a", "G17",
		"\n", " ", "#", "==", "NOT()", "INPUT()", "y = ", "(a,b)", "\t",
	}
	seed := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(n))
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		for i := 0; i < next(40); i++ {
			sb.WriteString(pieces[next(len(pieces))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", sb.String(), r)
				}
			}()
			_, _ = ParseString(sb.String(), "fuzz")
		}()
	}
}

func TestParseInv(t *testing.T) {
	c, err := ParseString("INPUT(a)\nOUTPUT(y)\ny = INV(a)", "t")
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Type.String() != "NOT" {
		t.Errorf("INV parsed as %v", c.Gates[0].Type)
	}
}
