package bench

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestParseLimitedBytes covers the byte budget: exact fits parse, one
// byte over fails with ErrTooLarge regardless of where the cut lands.
func TestParseLimitedBytes(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n"
	if _, err := ParseLimited(strings.NewReader(src), "x", Limits{MaxBytes: int64(len(src))}); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
	for _, max := range []int64{1, 5, int64(len(src)) - 1} {
		_, err := ParseLimited(strings.NewReader(src), "x", Limits{MaxBytes: max})
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("MaxBytes=%d: got %v, want ErrTooLarge", max, err)
		}
	}
}

// TestParseLimitedSignals covers the signal budget: the circuit below
// names 5 distinct signals (a, b, z, g1, g2).
func TestParseLimitedSignals(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\ng1 = AND(a, b)\ng2 = OR(a, b)\nz = XOR(g1, g2)\n"
	if _, err := ParseLimited(strings.NewReader(src), "x", Limits{MaxSignals: 5}); err != nil {
		t.Fatalf("5 signals under a 5-signal budget rejected: %v", err)
	}
	_, err := ParseLimited(strings.NewReader(src), "x", Limits{MaxSignals: 4})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
}

// TestParseEmpty: input with no statements is rejected explicitly, both
// truly empty and comment-only.
func TestParseEmpty(t *testing.T) {
	for _, src := range []string{"", "   \n\t\n", "# just\n# comments\n"} {
		_, err := ParseString(src, "x")
		if err == nil || !strings.Contains(err.Error(), "empty netlist") {
			t.Errorf("ParseString(%q): %v, want empty-netlist error", src, err)
		}
	}
}

// TestParseUnlimitedByDefault: Parse and zero Limits impose no bounds.
func TestParseUnlimitedByDefault(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("INPUT(a)\nOUTPUT(z)\n")
	prev := "a"
	for i := 0; i < 2000; i++ {
		cur := "g" + strconv.Itoa(i)
		sb.WriteString(cur + " = NOT(" + prev + ")\n")
		prev = cur
	}
	sb.WriteString("z = BUFF(" + prev + ")\n")
	if _, err := ParseString(sb.String(), "big"); err != nil {
		t.Fatalf("unlimited parse failed: %v", err)
	}
}
