// Package bench reads and writes the ISCAS-89 ".bench" netlist format, the
// standard interchange format for the benchmark circuits the paper
// evaluates on.
//
// The format is line oriented:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G5 = DFF(G10)
//	G8 = AND(G14, G6)
//
// Gate keywords: AND, NAND, OR, NOR, XOR, XNOR, NOT (INV), BUF/BUFF, and
// DFF for flip-flops. Parsing is case-insensitive for keywords and
// whitespace-tolerant; signal names are case-sensitive.
package bench

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"seqbist/internal/netlist"
)

// Limits bounds a .bench parse of untrusted input. The zero value means
// unlimited, which is appropriate for files the operator chose; inputs
// arriving over the network (the service's upload path) should use
// UploadLimits or tighter.
type Limits struct {
	// MaxBytes caps the source size in bytes (0 = unlimited). Exceeding
	// it aborts the parse before the excess is read.
	MaxBytes int64
	// MaxSignals caps the number of distinct signals (nets) the netlist
	// may declare or reference (0 = unlimited). The check runs while
	// parsing, so an oversized netlist is rejected without being built.
	MaxSignals int
}

// UploadLimits is the default bound for network-supplied netlists: 1 MiB
// of source and 250k signals, comfortably above the largest ISCAS-89
// circuit (s38584: ~20k signals) while keeping a hostile upload from
// exhausting daemon memory.
var UploadLimits = Limits{MaxBytes: 1 << 20, MaxSignals: 250_000}

// ErrTooLarge reports input that exceeds a parse limit.
var ErrTooLarge = errors.New("bench: input exceeds size limit")

// Parse reads a .bench netlist from r and builds the circuit, with no size
// limits. The name parameter names the resulting circuit (the format
// itself carries no name).
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	return ParseLimited(r, name, Limits{})
}

// ParseLimited is Parse with size limits enforced during the scan, for
// input that crosses a trust boundary. Empty input (no statements after
// stripping comments and blanks) is rejected explicitly rather than
// surfacing as a missing-inputs netlist error.
func ParseLimited(r io.Reader, name string, lim Limits) (*netlist.Circuit, error) {
	var lr *limitedReader
	if lim.MaxBytes > 0 {
		lr = &limitedReader{r: r, max: lim.MaxBytes, remaining: lim.MaxBytes}
		r = lr
	}
	b := netlist.NewBuilder(name)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo, stmts := 0, 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			// A byte-budget overflow truncates the final buffered line;
			// report the limit, not the parse artifact it produced.
			if lr != nil && lr.exceeded {
				return nil, fmt.Errorf("%w (more than %d bytes)", ErrTooLarge, lr.max)
			}
			return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
		}
		stmts++
		if lim.MaxSignals > 0 && b.NumSignals() > lim.MaxSignals {
			return nil, fmt.Errorf("%w: more than %d signals (line %d)",
				ErrTooLarge, lim.MaxSignals, lineNo)
		}
	}
	if err := scanner.Err(); err != nil {
		if errors.Is(err, ErrTooLarge) {
			return nil, err
		}
		return nil, fmt.Errorf("bench: %w", err)
	}
	if stmts == 0 {
		return nil, errors.New("bench: empty netlist (no statements)")
	}
	return b.Build()
}

// ParseString is Parse on a string.
func ParseString(src, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(src), name)
}

// limitedReader reads up to its byte budget and then fails with
// ErrTooLarge (unlike io.LimitReader, which reports a silent EOF that
// would truncate a netlist instead of rejecting it). No byte past the
// budget is ever passed through, so the consumer never sees — and never
// reports an error about — a line the limit cut in half.
type limitedReader struct {
	r              io.Reader
	max, remaining int64
	exceeded       bool
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.remaining <= 0 {
		// Budget exhausted: distinguish exact fit from overflow with a
		// one-byte probe.
		var probe [1]byte
		n, err := l.r.Read(probe[:])
		if n > 0 {
			l.exceeded = true
			return 0, fmt.Errorf("%w (more than %d bytes)", ErrTooLarge, l.max)
		}
		return 0, err
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

func parseLine(b *netlist.Builder, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT"):
		arg, err := parenArg(line[len("INPUT"):])
		if err != nil {
			return err
		}
		b.AddInput(arg)
		return nil
	case strings.HasPrefix(upper, "OUTPUT"):
		arg, err := parenArg(line[len("OUTPUT"):])
		if err != nil {
			return err
		}
		b.AddOutput(arg)
		return nil
	}

	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("expected assignment, got %q", line)
	}
	out := strings.TrimSpace(line[:eq])
	if out == "" {
		return fmt.Errorf("empty output name in %q", line)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return fmt.Errorf("malformed gate expression %q", rhs)
	}
	keyword := strings.TrimSpace(rhs[:open])
	var ins []string
	for _, f := range strings.Split(rhs[open+1:close], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return fmt.Errorf("empty operand in %q", rhs)
		}
		ins = append(ins, f)
	}
	if strings.EqualFold(keyword, "DFF") {
		if len(ins) != 1 {
			return fmt.Errorf("DFF %s must have exactly one input, got %d", out, len(ins))
		}
		b.AddDFF(out, ins[0])
		return nil
	}
	gt, err := netlist.ParseGateType(keyword)
	if err != nil {
		return err
	}
	b.AddGate(gt, out, ins...)
	return nil
}

// parenArg extracts the argument of "( name )".
func parenArg(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("expected parenthesized argument, got %q", s)
	}
	arg := strings.TrimSpace(s[1 : len(s)-1])
	if arg == "" {
		return "", fmt.Errorf("empty argument in %q", s)
	}
	return arg, nil
}

// Write emits c in .bench format: inputs, outputs, flip-flops, then gates
// in topological order. The output round-trips through Parse to an
// equivalent circuit.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		c.NumPIs(), c.NumPOs(), c.NumDFFs(), c.NumGates())
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.NameOf(pi))
	}
	fmt.Fprintln(bw)
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.NameOf(po))
	}
	fmt.Fprintln(bw)
	for _, ff := range c.DFFs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.NameOf(ff.Q), c.NameOf(ff.D))
	}
	fmt.Fprintln(bw)
	for _, g := range c.Gates {
		names := make([]string, len(g.In))
		for i, in := range g.In {
			names[i] = c.NameOf(in)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.NameOf(g.Out), g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// Format renders c as a .bench string.
func Format(c *netlist.Circuit) string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = Write(&sb, c)
	return sb.String()
}

// Fingerprint returns an order-insensitive structural description of the
// circuit, useful for equivalence checks in tests: sorted lines of the
// canonical .bench body.
func Fingerprint(c *netlist.Circuit) string {
	var lines []string
	for _, pi := range c.PIs {
		lines = append(lines, "INPUT("+c.NameOf(pi)+")")
	}
	for _, po := range c.POs {
		lines = append(lines, "OUTPUT("+c.NameOf(po)+")")
	}
	for _, ff := range c.DFFs {
		lines = append(lines, c.NameOf(ff.Q)+"=DFF("+c.NameOf(ff.D)+")")
	}
	for _, g := range c.Gates {
		names := make([]string, len(g.In))
		for i, in := range g.In {
			names[i] = c.NameOf(in)
		}
		lines = append(lines, c.NameOf(g.Out)+"="+g.Type.String()+"("+strings.Join(names, ",")+")")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
