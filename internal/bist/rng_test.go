package bist

import "seqbist/internal/xrand"

func newRNG(seed uint64) *xrand.RNG { return xrand.New(seed) }
