package bist

import (
	"strings"
	"testing"

	"seqbist/internal/vectors"
)

func TestGenerateVerilogStructure(t *testing.T) {
	src, err := GenerateVerilog(VerilogConfig{
		ModuleName: "demo", Width: 4, Depth: 8, N: 2, NumPOs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module demo_expander",
		"module demo_misr",
		"input  wire [3:0]       load_data", // WIDTH-1 = 3
		"reg [3:0] mem [0:7]",               // DEPTH-1 = 7
		"wire comp  = phase[0] ^ phase[2];", // the phase network
		"wire shft  = phase[1] ^ phase[2];",
		"64'h42F0E1EBA9EA3693", // MISR polynomial matches misr.go
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated Verilog missing %q", want)
		}
	}
	// Module/endmodule balance.
	if strings.Count(src, "module ") < 2 || strings.Count(src, "endmodule") != 2 {
		t.Errorf("module/endmodule imbalance:\nmodules=%d endmodules=%d",
			strings.Count(src, "module "), strings.Count(src, "endmodule"))
	}
	// begin/end balance (textual sanity; not a Verilog parser).
	begins := strings.Count(src, "begin")
	ends := strings.Count(src, "end") - strings.Count(src, "endmodule")
	if begins != ends {
		t.Errorf("begin/end imbalance: %d vs %d", begins, ends)
	}
}

func TestGenerateVerilogOmitsMISRWithoutPOs(t *testing.T) {
	src, err := GenerateVerilog(VerilogConfig{Width: 2, Depth: 2, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "_misr") {
		t.Error("MISR emitted despite NumPOs=0")
	}
	if !strings.Contains(src, "seqbist_expander") {
		t.Error("default module name not applied")
	}
}

func TestGenerateVerilogRejectsBadGeometry(t *testing.T) {
	for _, cfg := range []VerilogConfig{
		{Width: 0, Depth: 4, N: 2},
		{Width: 4, Depth: 0, N: 2},
		{Width: 4, Depth: 4, N: 0},
	} {
		if _, err := GenerateVerilog(cfg); err == nil {
			t.Errorf("geometry %+v accepted", cfg)
		}
	}
}

func TestGenerateVerilogForSet(t *testing.T) {
	set := []vectors.Sequence{
		vectors.MustParseSequence("0101 1111 0000"),
		vectors.MustParseSequence("0011"),
	}
	src, err := GenerateVerilogForSet("chip", set, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Depth = 3 (longest sequence), width = 4.
	if !strings.Contains(src, "mem [0:2]") {
		t.Error("depth not derived from the longest sequence")
	}
	if !strings.Contains(src, "[3:0]       load_data") {
		t.Error("width not derived from the vectors")
	}
	if _, err := GenerateVerilogForSet("x", nil, 2, 1); err == nil {
		t.Error("empty set accepted")
	}
}

// TestVerilogPhaseNetworkMatchesGoTable checks the p[0]^p[2] / p[1]^p[2] /
// !p[2] encoding against the Go phaseTable the simulator uses.
func TestVerilogPhaseNetworkMatchesGoTable(t *testing.T) {
	for p := 0; p < 8; p++ {
		comp := (p&1)^(p>>2&1) == 1
		shift := (p>>1&1)^(p>>2&1) == 1
		up := p>>2&1 == 0
		want := phaseTable[p]
		if comp != want.complement || shift != want.shift || up != want.up {
			t.Errorf("phase %d: verilog (%v,%v,%v) vs table (%v,%v,%v)",
				p, comp, shift, up, want.complement, want.shift, want.up)
		}
	}
}
