package bist

import (
	"os"
	"testing"
)

// TestVerilogGolden pins the generated RTL against the snapshot in
// testdata/, so unintended generator changes surface as a diff.
func TestVerilogGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_expander.v")
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateVerilog(VerilogConfig{
		ModuleName: "golden", Width: 4, Depth: 8, N: 2, NumPOs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Error("generated Verilog drifted from testdata/golden_expander.v; " +
			"rerun with SEQBIST_UPDATE_GOLDEN=1 if the change is intentional")
	}
}

// TestRegenerateGolden rewrites the golden Verilog snapshot when run with
// SEQBIST_UPDATE_GOLDEN=1; otherwise it is a no-op.
func TestRegenerateGolden(t *testing.T) {
	if os.Getenv("SEQBIST_UPDATE_GOLDEN") == "" {
		t.Skip("set SEQBIST_UPDATE_GOLDEN=1 to rewrite the snapshot")
	}
	src, err := GenerateVerilog(VerilogConfig{
		ModuleName: "golden", Width: 4, Depth: 8, N: 2, NumPOs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_expander.v", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}
