package bist

import (
	"fmt"
	"math/bits"

	"seqbist/internal/vectors"
)

// HardwareCost itemizes the on-chip resources of the paper's scheme for a
// given circuit interface and stored-sequence set. The paper's point is
// that everything except the memory is independent of the circuit and
// tiny: counters, one complement mux and one shift mux per input, and an
// 8-state controller.
type HardwareCost struct {
	// MemoryBits is the test memory: longest stored sequence x inputs.
	MemoryBits int
	// AddressCounterBits is the up/down address counter width.
	AddressCounterBits int
	// RepetitionCounterBits counts expansions (log2 n).
	RepetitionCounterBits int
	// PhaseBits is the controller FSM state (8 phases).
	PhaseBits int
	// MuxCount is the number of 2:1 multiplexers on the memory outputs
	// (one complement mux and one shift mux per input bit).
	MuxCount int
	// InverterCount is the number of inverters for complementation.
	InverterCount int
	// MISRBits is the response-compaction register width.
	MISRBits int
}

// CostOf computes the hardware cost for a stored set on a circuit with
// the given number of primary inputs, using repetition count n.
func CostOf(numPIs, n int, set []vectors.Sequence) HardwareCost {
	_, maxLen := vectors.TotalAndMaxLength(set)
	return HardwareCost{
		MemoryBits:            maxLen * numPIs,
		AddressCounterBits:    bitsFor(maxLen),
		RepetitionCounterBits: bitsFor(n),
		PhaseBits:             3,
		MuxCount:              2 * numPIs,
		InverterCount:         numPIs,
		MISRBits:              64,
	}
}

// TotalControlBits sums every non-memory storage element: the
// circuit-independent part of the scheme.
func (h HardwareCost) TotalControlBits() int {
	return h.AddressCounterBits + h.RepetitionCounterBits + h.PhaseBits + h.MISRBits
}

// String renders a short human-readable summary.
func (h HardwareCost) String() string {
	return fmt.Sprintf("memory %d bits, %d-bit addr counter, %d-bit rep counter, %d mux, %d inverters, %d-bit MISR",
		h.MemoryBits, h.AddressCounterBits, h.RepetitionCounterBits, h.MuxCount, h.InverterCount, h.MISRBits)
}

// bitsFor returns the number of bits needed to count to max (at least 1).
func bitsFor(max int) int {
	if max <= 1 {
		return 1
	}
	return bits.Len(uint(max - 1))
}
