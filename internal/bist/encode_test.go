package bist

import (
	"testing"
	"testing/quick"

	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

func TestRLERoundTrip(t *testing.T) {
	cases := []string{
		"01 01 01 10",
		"01",
		"01 10 01 10",
		"11 11 11 11 11",
	}
	for _, src := range cases {
		seq := vectors.MustParseSequence(src)
		runs := EncodeRLE(seq)
		if !DecodeRLE(runs).Equal(seq) {
			t.Errorf("round trip failed for %q", src)
		}
	}
	if len(EncodeRLE(nil)) != 0 {
		t.Error("empty sequence encoded to entries")
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(seed uint64, holdRaw uint8) bool {
		rng := xrand.New(seed)
		// Build a holdy sequence so runs exist.
		var seq vectors.Sequence
		for len(seq) < 30 {
			v := vectors.Random(rng, 4)
			hold := 1 + int(holdRaw%5)
			for h := 0; h < hold && len(seq) < 30; h++ {
				seq = append(seq, v)
			}
		}
		return DecodeRLE(EncodeRLE(seq)).Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRLECompressesHolds(t *testing.T) {
	seq := vectors.MustParseSequence("0101 0101 0101 0101 0101 0101 0101 0101")
	runs := EncodeRLE(seq)
	if len(runs) != 1 || runs[0].Count != 8 {
		t.Fatalf("runs = %+v", runs)
	}
	enc := EncodedBits(runs, 4)
	raw := RawBits(seq, 4)
	if enc >= raw {
		t.Errorf("encoding did not compress a held vector: %d >= %d", enc, raw)
	}
}

func TestRLEOverheadOnIncompressible(t *testing.T) {
	seq := vectors.MustParseSequence("00 01 10 11 00 01 10 11")
	rep := EncodeSet([]vectors.Sequence{seq}, 2)
	if rep.Ratio() <= 1.0 {
		t.Errorf("incompressible sequence reported ratio %.2f, want > 1 (count-field overhead)",
			rep.Ratio())
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestEncodeSetAggregates(t *testing.T) {
	a := vectors.MustParseSequence("01 01 01 01")
	b := vectors.MustParseSequence("10 10")
	rep := EncodeSet([]vectors.Sequence{a, b}, 2)
	if rep.RawBits != (4+2)*2 {
		t.Errorf("raw bits %d", rep.RawBits)
	}
	if rep.EncodedBits <= 0 || rep.EncodedBits >= rep.RawBits+8 {
		t.Errorf("encoded bits %d implausible", rep.EncodedBits)
	}
	empty := EncodeSet(nil, 2)
	if empty.Ratio() != 0 {
		t.Error("empty set ratio not 0")
	}
}
