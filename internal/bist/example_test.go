package bist_test

import (
	"fmt"

	"seqbist/internal/bist"
	"seqbist/internal/vectors"
)

// The on-chip hardware expands a 2-vector memory into the full Sexp.
func ExampleExpander() {
	mem := bist.NewMemory(3)
	if err := mem.Load(vectors.MustParseSequence("000 110")); err != nil {
		fmt.Println(err)
		return
	}
	e := bist.NewExpander(mem, 2)
	fmt.Println("will produce", e.Len(), "vectors from", mem.LoadCycles(), "load cycles")
	v, _ := e.Next()
	fmt.Println("first vector:", v)
	// Output:
	// will produce 32 vectors from 2 load cycles
	// first vector: 000
}

// Hardware cost is dominated by the memory; the control is a few dozen
// bits regardless of the circuit.
func ExampleCostOf() {
	set := []vectors.Sequence{vectors.MustParseSequence("0101 1111 0000")}
	cost := bist.CostOf(4, 8, set)
	fmt.Println(cost)
	// Output:
	// memory 12 bits, 2-bit addr counter, 3-bit rep counter, 8 mux, 4 inverters, 64-bit MISR
}
