// Package bist emulates the on-chip test-application hardware the paper's
// scheme requires: a small test memory, an up/down address counter, a
// repetition counter, complement and shift multiplexers on the memory
// outputs, the controller FSM that sequences the eight expansion phases,
// and a MISR for output response compaction.
//
// The emulation is cycle-accurate at the vector level: the Expander
// produces exactly the expanded sequence Sexp = S”'·r(S”') of the
// paper's §2 (verified against the functional expansion of package
// expand), using only operations the described hardware performs —
// memory reads at a counted address, per-output multiplexing, and counter
// updates. The structure of the hardware is independent of the circuit
// under test, as the paper requires; only the memory geometry (word width
// = number of PIs, depth = longest stored sequence) is circuit-specific.
package bist

import (
	"fmt"

	"seqbist/internal/vectors"
)

// Memory is the on-chip test memory: depth words of width bits. Loading
// happens at tester speed, one word per load cycle.
type Memory struct {
	width int
	words vectors.Sequence
	loads int // total load cycles so far
}

// NewMemory returns a memory for vectors of the given width.
func NewMemory(width int) *Memory {
	return &Memory{width: width}
}

// Load replaces the memory contents with seq, counting one tester load
// cycle per vector. It fails if a vector width mismatches the memory.
func (m *Memory) Load(seq vectors.Sequence) error {
	for _, v := range seq {
		if len(v) != m.width {
			return fmt.Errorf("bist: loading vector of width %d into width-%d memory", len(v), m.width)
		}
	}
	m.words = seq.Clone()
	m.loads += seq.Len()
	return nil
}

// Read returns the word at addr.
func (m *Memory) Read(addr int) vectors.Vector {
	return m.words[addr]
}

// Depth returns the number of words currently stored.
func (m *Memory) Depth() int { return m.words.Len() }

// Width returns the word width in bits.
func (m *Memory) Width() int { return m.width }

// LoadCycles returns the cumulative number of tester load cycles.
func (m *Memory) LoadCycles() int { return m.loads }

// AddressCounter is the up/down memory address counter. In up mode it
// counts 0,1,...,max-1 and wraps; in down mode max-1,...,0 and wraps.
// Wrap reports when the counter has completed a full pass, which drives
// the repetition counter.
type AddressCounter struct {
	max  int
	up   bool
	addr int
}

// NewAddressCounter returns a counter over max addresses, initially in up
// mode at address 0.
func NewAddressCounter(max int) *AddressCounter {
	if max <= 0 {
		panic(fmt.Sprintf("bist: address counter over %d addresses", max))
	}
	return &AddressCounter{max: max, up: true}
}

// SetDirection sets up (true) or down (false) counting and resets the
// counter to the starting address of that direction.
func (a *AddressCounter) SetDirection(up bool) {
	a.up = up
	if up {
		a.addr = 0
	} else {
		a.addr = a.max - 1
	}
}

// Addr returns the current address.
func (a *AddressCounter) Addr() int { return a.addr }

// Step advances the counter and reports whether it wrapped (completed a
// pass through all addresses).
func (a *AddressCounter) Step() (wrapped bool) {
	if a.up {
		a.addr++
		if a.addr == a.max {
			a.addr = 0
			return true
		}
		return false
	}
	a.addr--
	if a.addr < 0 {
		a.addr = a.max - 1
		return true
	}
	return false
}

// phase describes one of the eight expansion phases: whether the memory
// output passes through the complement and shift multiplexers, and the
// address counting direction.
type phase struct {
	complement bool
	shift      bool
	up         bool
}

// phaseTable is the controller's phase sequence. The first four phases
// produce S”' = A·B·(A<<1)·(B<<1) with A = S^n and B = comp(A); the last
// four produce the reversal r(S”') by replaying the phases in opposite
// order with the address counter in down mode (and repetitions mirrored).
var phaseTable = [8]phase{
	{false, false, true},  // A
	{true, false, true},   // B = comp(A)
	{false, true, true},   // A << 1
	{true, true, true},    // B << 1
	{true, true, false},   // r(B << 1)
	{false, true, false},  // r(A << 1)
	{true, false, false},  // r(B)
	{false, false, false}, // r(A)
}

// Expander is the on-chip controller: it streams Sexp from the memory
// using the address counter, the repetition counter and the output
// multiplexers. The produced stream is exactly
// expand.Expand(S, n) (verified by tests).
type Expander struct {
	mem   *Memory
	n     int
	addr  *AddressCounter
	ph    int // 0..7, 8 = done
	rep   int // repetitions completed within the current phase
	count int // vectors produced
}

// NewExpander returns an expander over the current memory contents with
// repetition count n.
func NewExpander(mem *Memory, n int) *Expander {
	if n < 1 {
		panic(fmt.Sprintf("bist: expander with n=%d", n))
	}
	e := &Expander{mem: mem, n: n, addr: NewAddressCounter(mem.Depth())}
	e.addr.SetDirection(phaseTable[0].up)
	return e
}

// Len returns the total number of vectors the expander produces: 8n|S|.
func (e *Expander) Len() int { return 8 * e.n * e.mem.Depth() }

// Next produces the next vector of Sexp, applying the complement and
// shift multiplexers to the memory output. ok is false when the expansion
// is complete.
func (e *Expander) Next() (v vectors.Vector, ok bool) {
	if e.ph >= 8 {
		return nil, false
	}
	p := phaseTable[e.ph]
	v = e.mem.Read(e.addr.Addr())
	if p.complement {
		v = v.Complement()
	}
	if p.shift {
		v = v.ShiftLeftCircular()
	}
	e.count++
	if wrapped := e.addr.Step(); wrapped {
		e.rep++
		if e.rep == e.n {
			e.rep = 0
			e.ph++
			if e.ph < 8 {
				e.addr.SetDirection(phaseTable[e.ph].up)
			}
		}
	}
	return v, true
}

// Produced returns the number of vectors generated so far.
func (e *Expander) Produced() int { return e.count }
