package bist

import (
	"testing"
	"testing/quick"

	"seqbist/internal/expand"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestExpanderMatchesFunctionalExpansion is the hardware-equivalence
// keystone: the counter/mux expander must produce exactly
// expand.Expand(S, n) for arbitrary stored sequences.
func TestExpanderMatchesFunctionalExpansion(t *testing.T) {
	f := func(seed uint64, lRaw, wRaw, nRaw uint8) bool {
		l := int(lRaw%7) + 1
		w := int(wRaw%9) + 1
		ns := []int{1, 2, 4, 8, 16}
		n := ns[int(nRaw)%len(ns)]
		s := vectors.RandomSequence(xrand.New(seed), w, l)

		mem := NewMemory(w)
		if err := mem.Load(s); err != nil {
			return false
		}
		e := NewExpander(mem, n)
		want := expand.Expand(s, n)
		if e.Len() != want.Len() {
			return false
		}
		for i := 0; i < want.Len(); i++ {
			v, ok := e.Next()
			if !ok || !v.Equal(want[i]) {
				return false
			}
		}
		_, extra := e.Next()
		return !extra && e.Produced() == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestExpanderPaperTable1 drives the hardware on the paper's §2 example.
func TestExpanderPaperTable1(t *testing.T) {
	s := vectors.MustParseSequence("000 110")
	mem := NewMemory(3)
	if err := mem.Load(s); err != nil {
		t.Fatal(err)
	}
	e := NewExpander(mem, 2)
	var got vectors.Sequence
	for {
		v, ok := e.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := "000 110 000 110 111 001 111 001 " +
		"000 101 000 101 111 010 111 010 " +
		"010 111 010 111 101 000 101 000 " +
		"001 111 001 111 110 000 110 000"
	if got.String() != want {
		t.Errorf("hardware expansion = %s\nwant %s", got, want)
	}
}

func TestMemoryLoadCounts(t *testing.T) {
	mem := NewMemory(4)
	if err := mem.Load(vectors.MustParseSequence("0101 1111")); err != nil {
		t.Fatal(err)
	}
	if mem.LoadCycles() != 2 || mem.Depth() != 2 {
		t.Errorf("loads=%d depth=%d", mem.LoadCycles(), mem.Depth())
	}
	if err := mem.Load(vectors.MustParseSequence("0000 1111 0101")); err != nil {
		t.Fatal(err)
	}
	if mem.LoadCycles() != 5 || mem.Depth() != 3 {
		t.Errorf("after reload: loads=%d depth=%d", mem.LoadCycles(), mem.Depth())
	}
}

func TestMemoryWidthMismatch(t *testing.T) {
	mem := NewMemory(4)
	if err := mem.Load(vectors.MustParseSequence("01")); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestMemoryLoadIsolation(t *testing.T) {
	mem := NewMemory(2)
	seq := vectors.MustParseSequence("01 10")
	if err := mem.Load(seq); err != nil {
		t.Fatal(err)
	}
	seq[0][0] = seq[0][0].Not()
	if mem.Read(0).String() != "01" {
		t.Error("memory aliases the caller's sequence")
	}
}

func TestAddressCounterUp(t *testing.T) {
	a := NewAddressCounter(3)
	a.SetDirection(true)
	var addrs []int
	var wraps []bool
	for i := 0; i < 6; i++ {
		addrs = append(addrs, a.Addr())
		wraps = append(wraps, a.Step())
	}
	wantAddrs := []int{0, 1, 2, 0, 1, 2}
	wantWraps := []bool{false, false, true, false, false, true}
	for i := range wantAddrs {
		if addrs[i] != wantAddrs[i] || wraps[i] != wantWraps[i] {
			t.Fatalf("step %d: addr=%d wrap=%v, want %d/%v", i, addrs[i], wraps[i], wantAddrs[i], wantWraps[i])
		}
	}
}

func TestAddressCounterDown(t *testing.T) {
	a := NewAddressCounter(3)
	a.SetDirection(false)
	var addrs []int
	for i := 0; i < 4; i++ {
		addrs = append(addrs, a.Addr())
		a.Step()
	}
	want := []int{2, 1, 0, 2}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("down step %d: addr=%d, want %d", i, addrs[i], want[i])
		}
	}
}

func TestAddressCounterSingleAddress(t *testing.T) {
	a := NewAddressCounter(1)
	if !a.Step() {
		t.Error("single-address counter must wrap every step")
	}
	if a.Addr() != 0 {
		t.Error("address drifted")
	}
}

func TestExpanderBadN(t *testing.T) {
	mem := NewMemory(2)
	if err := mem.Load(vectors.MustParseSequence("01")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewExpander(n=0) did not panic")
		}
	}()
	NewExpander(mem, 0)
}
