package bist

import (
	"fmt"

	"seqbist/internal/vectors"
)

// Run-length encoding of stored sequences. The paper's §1 notes that
// "encoding can be used to reduce the memory requirements of the scheme
// proposed here if the requirement for at-speed testing can be relaxed":
// a decoder between memory and circuit inputs breaks the one-vector-per-
// clock cadence. This file provides that optional trade-off — an RLE
// codec over stored sequences with exact memory accounting — so the
// remark is measurable. The Expander does not consume encoded memories;
// encoding exists for loading/storage studies only.

// RunLength is one RLE entry: Vector applied Count consecutive times.
type RunLength struct {
	Vector vectors.Vector
	Count  int
}

// EncodeRLE compresses seq into run-length entries.
func EncodeRLE(seq vectors.Sequence) []RunLength {
	var out []RunLength
	for _, v := range seq {
		if n := len(out); n > 0 && out[n-1].Vector.Equal(v) {
			out[n-1].Count++
			continue
		}
		out = append(out, RunLength{Vector: v.Clone(), Count: 1})
	}
	return out
}

// DecodeRLE expands run-length entries back into a sequence.
func DecodeRLE(runs []RunLength) vectors.Sequence {
	var out vectors.Sequence
	for _, r := range runs {
		for i := 0; i < r.Count; i++ {
			out = append(out, r.Vector)
		}
	}
	return out
}

// EncodedBits returns the memory footprint of the encoded form: per
// entry, the vector width plus a repeat-count field wide enough for the
// longest run.
func EncodedBits(runs []RunLength, width int) int {
	maxCount := 1
	for _, r := range runs {
		if r.Count > maxCount {
			maxCount = r.Count
		}
	}
	countBits := bitsFor(maxCount + 1)
	return len(runs) * (width + countBits)
}

// RawBits returns the unencoded memory footprint of seq.
func RawBits(seq vectors.Sequence, width int) int { return seq.Len() * width }

// EncodingReport summarizes the encoding trade-off for a stored set.
type EncodingReport struct {
	RawBits     int
	EncodedBits int
}

// Ratio returns encoded/raw (1.0 means no gain).
func (r EncodingReport) Ratio() float64 {
	if r.RawBits == 0 {
		return 0
	}
	return float64(r.EncodedBits) / float64(r.RawBits)
}

// String renders the report.
func (r EncodingReport) String() string {
	return fmt.Sprintf("raw %d bits, RLE %d bits (ratio %.2f); decoding precludes at-speed application",
		r.RawBits, r.EncodedBits, r.Ratio())
}

// EncodeSet reports the encoding trade-off over a whole stored set.
func EncodeSet(set []vectors.Sequence, width int) EncodingReport {
	var rep EncodingReport
	for _, s := range set {
		rep.RawBits += RawBits(s, width)
		rep.EncodedBits += EncodedBits(EncodeRLE(s), width)
	}
	return rep
}
