package bist

import "seqbist/internal/logic"

// MISR is a 64-bit multiple-input signature register for output response
// compaction. Primary-output bits are XORed into distinct register
// positions each cycle, and the register steps as a Galois LFSR with the
// CRC-64/ECMA-182 feedback polynomial (primitive enough for signature
// work; the exact polynomial only matters for the aliasing probability,
// which at 64 bits is negligible for the sequence lengths involved).
//
// Unknown (X) primary-output values have no deterministic signature. The
// paper notes the circuit must be synchronized "to avoid unknown values
// during the computation of the signature"; the Session handles this by
// masking cycles in which the fault-free machine still produces X (see
// Session for the soundness argument).
type MISR struct {
	state uint64
}

// crc64ECMA is the CRC-64/ECMA-182 feedback polynomial.
const crc64ECMA = 0x42F0E1EBA9EA3693

// Reset clears the register.
func (m *MISR) Reset() { m.state = 0 }

// Shift injects one cycle of primary-output values and steps the
// register. mask[i] = false suppresses output i this cycle (used to blank
// X values deterministically); a nil mask injects every output. X values
// that are not masked inject as 0.
func (m *MISR) Shift(po []logic.Value, mask []bool) {
	var in uint64
	for i, v := range po {
		if mask != nil && !mask[i] {
			continue
		}
		if v == logic.One {
			in ^= 1 << (uint(i) % 64)
		}
	}
	// Galois step, then input injection.
	if m.state&1 != 0 {
		m.state = m.state>>1 ^ crc64ECMA
	} else {
		m.state >>= 1
	}
	m.state ^= in
}

// Signature returns the current register contents.
func (m *MISR) Signature() uint64 { return m.state }
