package bist

import (
	"testing"

	"seqbist/internal/core"
	"seqbist/internal/expand"
	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/iscas"
	"seqbist/internal/logic"
	"seqbist/internal/vectors"
)

// s27Session builds a BIST session from a real Procedure 1 selection on
// s27 with the paper's T0.
func s27Session(t *testing.T, n int) (*Session, []faults.Fault, *core.Result) {
	t.Helper()
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
	res, err := core.Select(c, fl, t0, core.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	var set []vectors.Sequence
	for _, s := range res.Set {
		set = append(set, s.Seq)
	}
	sess, err := NewSession(c, set, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunGolden(); err != nil {
		t.Fatal(err)
	}
	return sess, fl, res
}

func TestGoldenSignaturesDeterministic(t *testing.T) {
	a, _, _ := s27Session(t, 1)
	b, _, _ := s27Session(t, 1)
	sa, sb := a.GoldenSignatures(), b.GoldenSignatures()
	if len(sa) == 0 || len(sa) != len(sb) {
		t.Fatalf("signature counts: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("signature %d differs between identical sessions", i)
		}
	}
}

// TestBISTDetectionSound: every fault the MISR session flags must also be
// detected by the fault simulator on the same expanded sequences (the
// masking scheme guarantees no false alarms).
func TestBISTDetectionSound(t *testing.T) {
	sess, fl, res := s27Session(t, 1)
	c := iscas.S27()
	for i, f := range fl {
		bistDet := sess.DetectsFault(f)
		fsimDet := false
		for _, s := range res.Set {
			r := fsim.Run(c, []faults.Fault{f}, expand.Expand(s.Seq, 1))
			if r.Detected[0] {
				fsimDet = true
				break
			}
		}
		if bistDet && !fsimDet {
			t.Errorf("fault %d (%s): BIST flagged but simulator says undetected (false alarm)",
				i, f.Name(c))
		}
	}
}

// TestBISTDetectsMostTargets: signature comparison should catch nearly
// every simulator-detected fault (X-masking and aliasing can lose a few,
// but on s27 the sequences synchronize the circuit quickly).
func TestBISTDetectsMostTargets(t *testing.T) {
	sess, fl, res := s27Session(t, 1)
	detected := 0
	for i := range fl {
		if res.DetectedByT0[i] && sess.DetectsFault(fl[i]) {
			detected++
		}
	}
	if detected < res.NumTargets*3/4 {
		t.Errorf("BIST detected only %d of %d targets", detected, res.NumTargets)
	}
	t.Logf("BIST signature detection: %d/%d targets", detected, res.NumTargets)
}

func TestSessionCycleAccounting(t *testing.T) {
	sess, _, res := s27Session(t, 1)
	totalStored := 0
	for _, s := range res.Set {
		totalStored += s.Seq.Len()
	}
	if sess.LoadCycles() != totalStored {
		t.Errorf("load cycles %d, want %d (one per stored vector)", sess.LoadCycles(), totalStored)
	}
	if sess.AtSpeedCycles() != 8*totalStored {
		t.Errorf("at-speed cycles %d, want %d (8n per stored vector, n=1)",
			sess.AtSpeedCycles(), 8*totalStored)
	}
}

func TestSessionErrors(t *testing.T) {
	c := iscas.S27()
	if _, err := NewSession(c, []vectors.Sequence{{}}, 1); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := NewSession(c, []vectors.Sequence{vectors.MustParseSequence("01")}, 1); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := NewSession(c, nil, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestSyntheticSessionSound runs a full BIST session on a synthetic
// circuit with partial coverage and checks soundness plus the cycle
// accounting at scale.
func TestSyntheticSessionSound(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic session test skipped in -short mode")
	}
	c := iscas.MustLoad("s344")
	fl := faults.CollapsedUniverse(c)
	t0 := vectors.RandomSequence(newRNG(4), c.NumPIs(), 60)
	cfg := core.DefaultConfig(2)
	cfg.MaxOmissionTrials = 150
	res, err := core.Select(c, fl, t0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stored []vectors.Sequence
	for _, s := range res.Set {
		stored = append(stored, s.Seq)
	}
	if len(stored) == 0 {
		t.Skip("random T0 detected nothing on s344")
	}
	sess, err := NewSession(c, stored, cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunGolden(); err != nil {
		t.Fatal(err)
	}
	// Soundness on a deterministic sample of faults.
	for i := 0; i < len(fl); i += 11 {
		if !sess.DetectsFault(fl[i]) {
			continue
		}
		fsimDet := false
		for _, s := range res.Set {
			r := fsim.Run(c, []faults.Fault{fl[i]}, expand.Expand(s.Seq, cfg.N))
			if r.Detected[0] {
				fsimDet = true
				break
			}
		}
		if !fsimDet {
			t.Fatalf("false alarm on %s", fl[i].Name(c))
		}
	}
	total, _ := vectors.TotalAndMaxLength(stored)
	if sess.LoadCycles() != total || sess.AtSpeedCycles() != 8*cfg.N*total {
		t.Errorf("cycle accounting: load %d (want %d), at-speed %d (want %d)",
			sess.LoadCycles(), total, sess.AtSpeedCycles(), 8*cfg.N*total)
	}
}

func TestMISRSensitivity(t *testing.T) {
	// Two streams differing in one bit at one cycle must yield different
	// signatures.
	var a, b MISR
	po1 := []logic.Value{logic.One, logic.Zero}
	po2 := []logic.Value{logic.One, logic.One}
	for i := 0; i < 50; i++ {
		a.Shift(po1, nil)
		b.Shift(po1, nil)
	}
	a.Shift(po1, nil)
	b.Shift(po2, nil)
	for i := 0; i < 50; i++ {
		a.Shift(po1, nil)
		b.Shift(po1, nil)
	}
	if a.Signature() == b.Signature() {
		t.Error("single-bit difference aliased")
	}
}

func TestMISRMasking(t *testing.T) {
	var a, b MISR
	poX := []logic.Value{logic.X}
	poZero := []logic.Value{logic.Zero}
	mask := []bool{false}
	a.Shift(poX, mask)
	b.Shift(poZero, mask)
	if a.Signature() != b.Signature() {
		t.Error("masked position affected the signature")
	}
}

func TestMISRReset(t *testing.T) {
	var m MISR
	m.Shift([]logic.Value{logic.One}, nil)
	if m.Signature() == 0 {
		t.Error("shift had no effect")
	}
	m.Reset()
	if m.Signature() != 0 {
		t.Error("reset did not clear")
	}
}

func TestCostOf(t *testing.T) {
	set := []vectors.Sequence{
		vectors.MustParseSequence("0101 1111 0000"),
		vectors.MustParseSequence("0011"),
	}
	cost := CostOf(4, 8, set)
	if cost.MemoryBits != 3*4 {
		t.Errorf("memory bits = %d, want 12", cost.MemoryBits)
	}
	if cost.AddressCounterBits != 2 {
		t.Errorf("address counter bits = %d, want 2", cost.AddressCounterBits)
	}
	if cost.RepetitionCounterBits != 3 {
		t.Errorf("repetition counter bits = %d, want 3", cost.RepetitionCounterBits)
	}
	if cost.MuxCount != 8 || cost.InverterCount != 4 {
		t.Errorf("mux/inverter = %d/%d", cost.MuxCount, cost.InverterCount)
	}
	if cost.TotalControlBits() != 2+3+3+64 {
		t.Errorf("control bits = %d", cost.TotalControlBits())
	}
	if cost.String() == "" {
		t.Error("empty String()")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for in, want := range cases {
		if got := bitsFor(in); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestMemoryGeometryMatchesPaperClaim: the memory need only hold the
// longest stored sequence.
func TestMemoryGeometryMatchesPaperClaim(t *testing.T) {
	sess, _, res := s27Session(t, 1)
	_, maxLen := vectors.TotalAndMaxLength(storedOf(res))
	if sess.MemoryBits() != maxLen*4 {
		t.Errorf("memory bits = %d, want %d", sess.MemoryBits(), maxLen*4)
	}
}

func storedOf(res *core.Result) []vectors.Sequence {
	var out []vectors.Sequence
	for _, s := range res.Set {
		out = append(out, s.Seq)
	}
	return out
}
