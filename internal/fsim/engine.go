package fsim

// The active-region evaluation engine: one time unit of one fault group.
//
// The full-netlist stepper (fullpath.go) evaluates every gate for every
// group at every time unit. This engine exploits the defining invariant
// of parallel-fault simulation: a lane's value differs from the
// fault-free machine only where a fault effect has actually propagated.
// Per time unit it
//
//   - checks quiescence: a group with no diverged flip-flop and no
//     activated fault site provably tracks the fault-free machine, and
//     the whole time unit is skipped,
//   - otherwise simulates only the group's static active region
//     (cone.go), with one of two propagation structures picked by the
//     group's recent activity:
//
//     queue mode (sparse divergence) — seeds from diverged flip-flops and
//     activated sites, then level-ordered event propagation: a gate is
//     evaluated only when queued by a diverged input or a forcing, with
//     undiverged inputs read as Broadcast(goodVal). Sound because the
//     lane-parallel word ops are homomorphic over Broadcast: a gate whose
//     inputs all equal the broadcast fault-free values computes exactly
//     the broadcast fault-free output.
//
//     dense mode (wide divergence, e.g. the X-rich cycles right after
//     reset) — materialize the region's boundary and sources once, then
//     evaluate every region gate with direct word reads, exactly like the
//     full path but restricted to the region. No per-input laziness, no
//     queue bookkeeping: when most of the region has diverged anyway, the
//     straight-line walk is the fastest way through it.
//
//   - detects only at region primary outputs and captures next state only
//     at region flip-flops; everything else implicitly holds the
//     fault-free state.
//
// Detected (dropped) lanes are inerted: forcing masks are filtered by the
// live-lane mask when a plan is loaded, and stale divergence in dead
// lanes is pinned back to the fault-free value at seed time, so a group
// whose faults are all detected or inactive reaches quiescence. The
// results are bit-for-bit identical to the full path in every mode (lanes
// are independent bit columns, and dead lanes are masked out of every
// detection and divergence report); the differential tests prove it.

import (
	"math"

	"seqbist/internal/logic"
	"seqbist/internal/netlist"
)

// bcast is a lookup table for logic.Broadcast over the four Value
// encodings: the engine broadcasts a fault-free value for every lazy
// input read and every activation compare, and an indexed 16-byte load
// beats Broadcast's conditional fills on that path.
var bcast = [4]logic.Word{
	logic.Invalid: logic.Broadcast(logic.Invalid),
	logic.Zero:    logic.Broadcast(logic.Zero),
	logic.One:     logic.Broadcast(logic.One),
	logic.X:       logic.Broadcast(logic.X),
}

// inputWord returns the value of signal s for the current time unit: the
// diverged word if s diverged this epoch, else the broadcast fault-free
// value.
func inputWord(sc *scratch, goodVals []logic.Value, s int32) logic.Word {
	if sc.sigEpoch[s] == sc.epoch {
		return sc.words[s]
	}
	return bcast[goodVals[s]]
}

// bumpEpoch advances the per-time-unit stamp, clearing the stamp arrays
// on the (astronomically rare) int32 wraparound so stale stamps can never
// alias a fresh epoch.
func (sc *scratch) bumpEpoch() {
	if sc.epoch == math.MaxInt32-1 {
		for i := range sc.sigEpoch {
			sc.sigEpoch[i] = 0
		}
		for i := range sc.gateEpoch {
			sc.gateEpoch[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
}

// mixAlive pins the dead lanes of w to the fault-free value bg, keeping
// the live lanes: dropped faults must not keep generating activity.
func mixAlive(w, bg logic.Word, alive uint64) logic.Word {
	return logic.Word{
		CanZero: w.CanZero&alive | bg.CanZero&^alive,
		CanOne:  w.CanOne&alive | bg.CanOne&^alive,
	}
}

// push queues gate gi into its level bucket, once per time unit.
func (sc *scratch) push(csr *netlist.CSR, gi int32) {
	if sc.gateEpoch[gi] != sc.epoch {
		sc.gateEpoch[gi] = sc.epoch
		lev := csr.Level[gi]
		sc.buckets[lev] = append(sc.buckets[lev], gi)
		if lev > sc.maxLev {
			sc.maxLev = lev
		}
	}
}

// activate records signal s as diverged with value w and queues its
// consumer gates. The region is closed under fanout, so every consumer
// belongs to the group's region.
func (sc *scratch) activate(csr *netlist.CSR, s int32, w logic.Word) {
	sc.words[s] = w
	sc.sigEpoch[s] = sc.epoch
	for _, gi := range csr.GateFanout(netlist.SignalID(s)) {
		sc.push(csr, gi)
	}
}

// stepGroup evaluates one time unit for group g against the fault-free
// value snapshot goodVals, updating the sparse flip-flop state (state
// words plus the diverged list at *divDFF) in place, and returns the mask
// of lanes detected at a primary output this cycle (not yet masked by
// g.alive). Forcing plans must already be loaded into sc.
func (e *Engine) stepGroup(sc *scratch, g *group, goodVals []logic.Value, state []logic.Word, divDFF *[]int32) uint64 {
	p := &g.plan
	div := *divDFF
	alive := g.alive

	// Quiescence: every machine equals the fault-free machine and no live
	// fault site is activated, so this time unit cannot change anything.
	if len(div) == 0 {
		activated := false
		for i := range p.sites {
			s := &p.sites[i]
			if s.lanes[0]&alive == 0 {
				continue
			}
			if goodVals[s.sig] != s.stuck {
				activated = true
				break
			}
		}
		if !activated {
			sc.quiescent++
			sc.skipped += int64(len(e.csr.Out))
			g.lastEval = 0
			return 0
		}
	}

	// Pick the propagation structure from the group's recent activity
	// (lastEval: gates evaluated by the last queue step, or diverged
	// outputs seen by the last dense step). Wide divergence pays for a
	// straight dense walk of the region; sparse divergence is cheaper
	// event-driven. Options.Mode can pin either structure.
	if e.opts.Mode == ModeDense || (e.opts.Mode == ModeAuto && int(g.lastEval)*5 > len(p.gates)*2) {
		return e.stepGroupDense(sc, g, goodVals, state, divDFF)
	}

	c, csr := e.c, e.csr
	sc.bumpEpoch()
	epoch := sc.epoch
	sc.maxLev = 0
	evalStart := sc.evaluated

	// Seed: flip-flops that entered this time unit diverged. Lanes whose
	// fault has been dropped since the divergence was recorded are pinned
	// back to the fault-free value here, so dead faults go inert; capture
	// below re-examines every flip-flop whose D diverged or is forced, so
	// a reconverging flip-flop simply drops off the diverged list.
	for _, di := range div {
		q := c.DFFs[di].Q
		bg := bcast[goodVals[q]]
		w := mixAlive(state[di], bg, alive)
		if m0, m1 := sc.stem0[q], sc.stem1[q]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		if w != bg {
			sc.activate(csr, int32(q), w)
		}
	}
	// Seed: stem forces on clean flip-flop outputs and on primary inputs
	// activate their signal when the forcing actually changes it.
	for _, di := range p.stemQs {
		q := c.DFFs[di].Q
		if sc.sigEpoch[q] == epoch {
			continue // already seeded as diverged (force applied above)
		}
		bg := bcast[goodVals[q]]
		if w := forceWord(bg, sc.stem0[q], sc.stem1[q]); w != bg {
			sc.activate(csr, int32(q), w)
		}
	}
	for _, sig := range p.stemPIs {
		bg := bcast[goodVals[sig]]
		if w := forceWord(bg, sc.stem0[sig], sc.stem1[sig]); w != bg {
			sc.activate(csr, int32(sig), w)
		}
	}
	// Seed: gates carrying a forced input pin or a forced output must be
	// evaluated unconditionally so the forcing applies even when their
	// inputs are clean.
	for _, gi := range p.seedGates {
		sc.push(csr, gi)
	}

	// Levelized event propagation. A gate at level L only ever queues
	// consumers at levels > L, so a single ascending sweep suffices;
	// sc.maxLev grows as activations reach deeper levels.
	for lev := int32(1); lev <= sc.maxLev; lev++ {
		bucket := sc.buckets[lev]
		for bi := 0; bi < len(bucket); bi++ {
			gi := bucket[bi]
			ins := csr.In[csr.InOff[gi]:csr.InOff[gi+1]]
			var v logic.Word
			if bf := sc.branchAt[gi]; len(bf) != 0 {
				v = evalForcedLazy(sc, goodVals, csr.Type[gi], ins, bf)
			} else {
				v = inputWord(sc, goodVals, ins[0])
				switch csr.Type[gi] {
				case netlist.Buf:
				case netlist.Not:
					v = v.Not()
				case netlist.And:
					for _, in := range ins[1:] {
						v = v.And(inputWord(sc, goodVals, in))
					}
				case netlist.Nand:
					for _, in := range ins[1:] {
						v = v.And(inputWord(sc, goodVals, in))
					}
					v = v.Not()
				case netlist.Or:
					for _, in := range ins[1:] {
						v = v.Or(inputWord(sc, goodVals, in))
					}
				case netlist.Nor:
					for _, in := range ins[1:] {
						v = v.Or(inputWord(sc, goodVals, in))
					}
					v = v.Not()
				case netlist.Xor:
					for _, in := range ins[1:] {
						v = v.Xor(inputWord(sc, goodVals, in))
					}
				case netlist.Xnor:
					for _, in := range ins[1:] {
						v = v.Xor(inputWord(sc, goodVals, in))
					}
					v = v.Not()
				}
			}
			out := csr.Out[gi]
			if m0, m1 := sc.stem0[out], sc.stem1[out]; m0|m1 != 0 {
				v = forceWord(v, m0, m1)
			}
			sc.evaluated++
			if bg := bcast[goodVals[out]]; v != bg {
				sc.activate(csr, out, v)
			}
		}
		sc.buckets[lev] = bucket[:0]
	}
	evaluated := sc.evaluated - evalStart
	g.lastEval = int32(evaluated)
	sc.skipped += int64(len(csr.Out)) - evaluated

	// Detection at the region's primary outputs: an undiverged output
	// equals the fault-free value in every lane and cannot detect.
	var det uint64
	for _, pp := range p.pos {
		po := c.POs[pp]
		if sc.sigEpoch[po] != epoch {
			continue
		}
		switch goodVals[po] {
		case logic.Zero:
			det |= sc.words[po].DefiniteOne()
		case logic.One:
			det |= sc.words[po].DefiniteZero()
		}
	}

	// Capture next state at the region's flip-flops. A flip-flop whose D
	// neither diverged nor carries a forcing stays (or returns to) the
	// fault-free state and is simply left off the new diverged list.
	sc.newDiv = sc.newDiv[:0]
	for _, di := range p.dffs {
		d := c.DFFs[di].D
		m0, m1 := sc.dff0[di], sc.dff1[di]
		if sc.sigEpoch[d] != epoch && m0|m1 == 0 {
			continue
		}
		bg := bcast[goodVals[d]]
		w := bg
		if sc.sigEpoch[d] == epoch {
			w = sc.words[d]
		}
		if m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		if w != bg {
			state[di] = w
			sc.newDiv = append(sc.newDiv, di)
		}
	}
	// Swap the freshly built diverged list into place; the old backing
	// array becomes the scratch buffer for the next time unit.
	*divDFF, sc.newDiv = sc.newDiv, (*divDFF)[:0]
	return det
}

// stepGroupDense evaluates one time unit over the whole region with
// direct word reads: boundary signals and sources are materialized once,
// then every region gate is evaluated in topological order, exactly like
// the full-netlist path but restricted to the region. It maintains the
// same sparse state representation as the queue path, so the two modes
// interleave freely.
func (e *Engine) stepGroupDense(sc *scratch, g *group, goodVals []logic.Value, state []logic.Word, divDFF *[]int32) uint64 {
	p := &g.plan
	c, csr := e.c, e.csr
	alive := g.alive
	words := sc.words

	// Materialize the region's inputs: boundary signals carry the
	// broadcast fault-free value, region flip-flop outputs carry the
	// (sparse) machine state, and stem forces apply at the sources.
	for _, sig := range p.boundary {
		words[sig] = bcast[goodVals[sig]]
	}
	for _, di := range p.dffs {
		q := c.DFFs[di].Q
		words[q] = bcast[goodVals[q]]
	}
	for _, di := range p.stemQs {
		// A stem-forced Q whose flip-flop lies outside the region (its D
		// never diverges) is not covered by the loop above.
		q := c.DFFs[di].Q
		words[q] = bcast[goodVals[q]]
	}
	for _, di := range *divDFF {
		q := c.DFFs[di].Q
		words[q] = mixAlive(state[di], bcast[goodVals[q]], alive)
	}
	for _, di := range p.stemQs {
		q := c.DFFs[di].Q
		words[q] = forceWord(words[q], sc.stem0[q], sc.stem1[q])
	}
	for _, sig := range p.stemPIs {
		words[sig] = forceWord(bcast[goodVals[sig]], sc.stem0[sig], sc.stem1[sig])
	}

	// Evaluate every region gate; count diverged outputs so the activity
	// predictor can switch back to queue mode when divergence narrows.
	diverged := 0
	for _, gi := range p.gates {
		ins := csr.In[csr.InOff[gi]:csr.InOff[gi+1]]
		var v logic.Word
		if bf := sc.branchAt[gi]; len(bf) != 0 {
			v = evalForcedFlat(words, csr.Type[gi], ins, bf)
		} else {
			v = words[ins[0]]
			switch csr.Type[gi] {
			case netlist.Buf:
			case netlist.Not:
				v = v.Not()
			case netlist.And:
				for _, in := range ins[1:] {
					v = v.And(words[in])
				}
			case netlist.Nand:
				for _, in := range ins[1:] {
					v = v.And(words[in])
				}
				v = v.Not()
			case netlist.Or:
				for _, in := range ins[1:] {
					v = v.Or(words[in])
				}
			case netlist.Nor:
				for _, in := range ins[1:] {
					v = v.Or(words[in])
				}
				v = v.Not()
			case netlist.Xor:
				for _, in := range ins[1:] {
					v = v.Xor(words[in])
				}
			case netlist.Xnor:
				for _, in := range ins[1:] {
					v = v.Xor(words[in])
				}
				v = v.Not()
			}
		}
		out := csr.Out[gi]
		if m0, m1 := sc.stem0[out], sc.stem1[out]; m0|m1 != 0 {
			v = forceWord(v, m0, m1)
		}
		if v != bcast[goodVals[out]] {
			diverged++
		}
		words[out] = v
	}
	g.lastEval = int32(diverged)
	sc.evaluated += int64(len(p.gates))
	sc.skipped += int64(len(csr.Out) - len(p.gates))

	// Detection at the region's primary outputs.
	var det uint64
	for _, pp := range p.pos {
		po := c.POs[pp]
		switch goodVals[po] {
		case logic.Zero:
			det |= words[po].DefiniteOne()
		case logic.One:
			det |= words[po].DefiniteZero()
		}
	}

	// Capture next state at the region's flip-flops, rebuilding the
	// sparse diverged list.
	sc.newDiv = sc.newDiv[:0]
	for _, di := range p.dffs {
		d := c.DFFs[di].D
		w := words[d]
		if m0, m1 := sc.dff0[di], sc.dff1[di]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		if w != bcast[goodVals[d]] {
			state[di] = w
			sc.newDiv = append(sc.newDiv, di)
		}
	}
	*divDFF, sc.newDiv = sc.newDiv, (*divDFF)[:0]
	return det
}

// evalForcedLazy evaluates a gate whose input pins carry branch-forced
// lanes, reading undiverged inputs as broadcast fault-free values.
func evalForcedLazy(sc *scratch, goodVals []logic.Value, t netlist.GateType, ins []int32, bf []pinForce) logic.Word {
	in := func(p int) logic.Word {
		w := inputWord(sc, goodVals, ins[p])
		for i := range bf {
			if int(bf[i].pin) == p {
				w = forceWord(w, bf[i].m0, bf[i].m1)
			}
		}
		return w
	}
	return evalForcedWith(t, len(ins), in)
}

// evalForcedFlat evaluates a gate whose input pins carry branch-forced
// lanes over dense per-signal words (the dense-mode companion of
// evalForcedLazy).
func evalForcedFlat(words []logic.Word, t netlist.GateType, ins []int32, bf []pinForce) logic.Word {
	in := func(p int) logic.Word {
		w := words[ins[p]]
		for i := range bf {
			if int(bf[i].pin) == p {
				w = forceWord(w, bf[i].m0, bf[i].m1)
			}
		}
		return w
	}
	return evalForcedWith(t, len(ins), in)
}

// evalForcedWith folds a gate function over the pin-indexed input reader.
func evalForcedWith(t netlist.GateType, numIns int, in func(int) logic.Word) logic.Word {
	v := in(0)
	switch t {
	case netlist.Buf:
	case netlist.Not:
		v = v.Not()
	case netlist.And, netlist.Nand:
		for p := 1; p < numIns; p++ {
			v = v.And(in(p))
		}
		if t == netlist.Nand {
			v = v.Not()
		}
	case netlist.Or, netlist.Nor:
		for p := 1; p < numIns; p++ {
			v = v.Or(in(p))
		}
		if t == netlist.Nor {
			v = v.Not()
		}
	case netlist.Xor, netlist.Xnor:
		for p := 1; p < numIns; p++ {
			v = v.Xor(in(p))
		}
		if t == netlist.Xnor {
			v = v.Not()
		}
	}
	return v
}
