// Package fsim implements sequential stuck-at fault simulation.
//
// Two engines are provided:
//
//   - Incremental (and the convenience Run): a parallel-fault simulator
//     packing 64 faulty machines per pass into logic.Word lanes, with
//     fault dropping and first-detection-time recording. Incremental can
//     carry machine state across calls, which the ATPG substrate uses to
//     evaluate candidate subsequences cheaply from the current state.
//   - Single: a two-machine scalar simulator for one fault with early
//     exit on detection. Procedure 2 of the paper calls this in its inner
//     loop thousands of times, so it is allocation-free after creation.
//
// Both engines are active-region simulators in the PROOFS tradition:
// faults are packed into groups by structural locality, each group's
// static active region (the union of its faults' fanout cones, closed
// through flip-flops — see cone.go) is precomputed, and each time unit
// only the gates whose inputs actually diverged from the fault-free
// machine are evaluated, in level order (engine.go). Everything outside
// the diverged set provably carries the broadcast fault-free value, and a
// group whose machines all agree with the fault-free machine and whose
// fault sites are not activated is skipped outright (quiescence). The
// results are bit-for-bit identical to full-netlist evaluation — the
// pre-change full path is kept behind the SetFullEvaluation test hook and
// differential tests prove the equivalence.
//
// Detection semantics are the classical pessimistic three-valued rule,
// matching the paper's fault simulator: a fault is detected at time unit u
// when some primary output has a definite binary fault-free value and the
// definite opposite value in the faulty machine; X never detects. Both
// machines start in the all-unknown state ("the circuit state is unknown
// before the application of each expanded sequence").
package fsim

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/sim"
	"seqbist/internal/vectors"
)

// patternsApplied counts, process-wide, the input vectors (patterns) the
// simulation engines have applied: Incremental counts each vector once
// per Extend/Evaluate call (simulating all live faults in parallel),
// Single counts the vectors of each per-fault simulation, so the total is
// a raw simulation-throughput measure, not a per-fault-pair count. It
// feeds the daemon's GET /metrics observability endpoint; the counter is
// deliberately global because one process hosts one daemon, and the
// bookkeeping must not thread through every simulation call site.
var patternsApplied atomic.Int64

// PatternsApplied returns the cumulative number of input vectors applied
// by the fault-simulation engines in this process (see patternsApplied
// for the counting semantics).
func PatternsApplied() int64 { return patternsApplied.Load() }

// Undetected is the detection time reported for faults a sequence does not
// detect.
const Undetected = -1

// Result reports the outcome of fault-simulating a sequence.
type Result struct {
	// Detected[i] reports whether fault i of the input list was detected.
	Detected []bool
	// DetTime[i] is the first time unit at which fault i was detected, or
	// Undetected.
	DetTime []int
	// NumDetected counts the detected faults.
	NumDetected int
}

// Coverage returns the fraction of faults detected.
func (r Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDetected) / float64(len(r.Detected))
}

// Run fault-simulates seq from the all-unknown state against the given
// fault list and returns per-fault detection results. It shards the fault
// groups across DefaultParallelism goroutines; the results are identical
// to the serial path (RunParallel with workers=1).
func Run(c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence) Result {
	return RunParallel(c, fl, seq, DefaultParallelism())
}

// RunParallel is Run with an explicit goroutine count for the group-sharded
// scheduler. workers <= 1 selects the serial path; any worker count yields
// bit-for-bit identical detection results.
func RunParallel(c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence, workers int) Result {
	inc := NewIncremental(c, fl)
	inc.SetParallelism(workers)
	// Chunked extension with early exit: once every fault is detected the
	// rest of the sequence cannot change the Result. The chunk stride is
	// derived from the circuit's sequential depth (see earlyExitStride):
	// shallow circuits check the exit condition sooner, deep circuits
	// amortize per-chunk scheduling overhead over longer extensions.
	chunk := earlyExitStride(c)
	for start := 0; start < len(seq); start += chunk {
		if inc.NumDetected() == len(fl) {
			break
		}
		end := start + chunk
		if end > len(seq) {
			end = len(seq)
		}
		inc.Extend(seq[start:end])
	}
	return inc.Result()
}

// group is one batch of up to 64 faults simulated bit-parallel, with the
// static simulation plan of its union active region.
type group struct {
	fault []int // indices into the fault list, one per lane
	alive uint64

	plan plan

	// Machine state, sparse: state[di] is meaningful only for the
	// flip-flop indices listed in divDFF (the flip-flops whose word
	// differs from the broadcast fault-free state); every other flip-flop
	// is implicitly at the fault-free value. In full-evaluation mode
	// (SetFullEvaluation) state is dense and divDFF is unused.
	state  []logic.Word
	divDFF []int32

	// lastEval is the gate count the previous time unit evaluated — the
	// activity predictor that picks the propagation structure (engine.go).
	lastEval int32
}

// Incremental is a parallel-fault simulator that retains machine state
// between calls.
type Incremental struct {
	c   *netlist.Circuit
	csr *netlist.CSR
	fl  []faults.Fault

	good      *sim.Simulator
	goodState []logic.Value
	goodPO    []logic.Value

	// Pooled non-committing good machine for Evaluate/Peek.
	peekSim   *sim.Simulator
	peekState []logic.Value
	peekPO    []logic.Value

	// Pooled good-value trace, one row per time unit of the current call.
	trace goodTrace

	groups  []group
	liveBuf []int

	// sc is the serial path's scratch; the sharded scheduler draws one
	// private scratch per worker from workerScratch instead (parallel.go).
	sc            *scratch
	workers       int
	workerScratch []*scratch

	// fullEval selects the pre-change full-netlist evaluation path
	// (fullpath.go); a test hook, see SetFullEvaluation.
	fullEval bool

	detected []bool
	detTime  []int
	numDet   int
	now      int // absolute time units simulated so far
}

// scratch holds the per-signal/gate/dff forcing masks, value words, and
// event-propagation state one simulation pass needs. The mask arrays are
// populated once per group per call (loadPlan/unloadPlan); each concurrent
// shard owns its own scratch so groups can be simulated in parallel
// without shared mutable state.
type scratch struct {
	stem0, stem1 []uint64
	branchAt     [][]pinForce // per gate
	dff0, dff1   []uint64     // per DFF
	words        []logic.Word // per-signal values (valid only when stamped)
	state        []logic.Word // per-DFF state for non-committing passes
	divDFF       []int32      // diverged-DFF list for non-committing passes

	// Active-region propagation scratch (engine.go). Epoch stamps avoid
	// clearing the arrays between time units; int32 keeps the hottest
	// random-access arrays cache-dense (see bumpEpoch for wraparound).
	epoch     int32
	sigEpoch  []int32   // per signal: stamped when diverged this time unit
	gateEpoch []int32   // per gate: stamped when queued this time unit
	buckets   [][]int32 // per-level gate worklists (queue mode)
	maxLev    int32     // deepest level queued this time unit
	newDiv    []int32

	dets []detection // per-call detection buffer (Extend)

	// Locally accumulated efficiency counters, flushed per call
	// (stats.go).
	evaluated int64
	skipped   int64
	quiescent int64
}

func newScratch(c *netlist.Circuit) *scratch {
	return &scratch{
		stem0:     make([]uint64, c.NumSignals()),
		stem1:     make([]uint64, c.NumSignals()),
		branchAt:  make([][]pinForce, c.NumGates()),
		dff0:      make([]uint64, c.NumDFFs()),
		dff1:      make([]uint64, c.NumDFFs()),
		words:     make([]logic.Word, c.NumSignals()),
		state:     make([]logic.Word, c.NumDFFs()),
		sigEpoch:  make([]int32, c.NumSignals()),
		gateEpoch: make([]int32, c.NumGates()),
		buckets:   make([][]int32, c.CSR().MaxLevel+1),
	}
}

type pinForce struct {
	pin    int32
	m0, m1 uint64
}

// goodTrace is a pooled arena of per-time-unit fault-free value
// snapshots. One flat backing array is re-sliced into rows, so repeated
// Evaluate/Extend calls allocate nothing once the arena has grown to the
// longest sequence seen.
type goodTrace struct {
	rows [][]logic.Value
	flat []logic.Value
}

// ensure returns n rows of the given width, growing the arena as needed.
func (t *goodTrace) ensure(n, width int) [][]logic.Value {
	need := n * width
	if cap(t.flat) < need {
		t.flat = make([]logic.Value, need)
	}
	t.flat = t.flat[:need]
	if cap(t.rows) < n {
		t.rows = make([][]logic.Value, n)
	}
	t.rows = t.rows[:n]
	for i := range t.rows {
		t.rows[i] = t.flat[i*width : (i+1)*width]
	}
	return t.rows
}

// NewIncremental prepares a simulator for the given circuit and fault
// list. The initial state of every machine is all-unknown. Faults are
// packed into 64-lane groups in locality order (packOrder), and each
// group's static active region is precomputed, so construction does the
// cone analysis once and every Extend/Evaluate call benefits.
func NewIncremental(c *netlist.Circuit, fl []faults.Fault) *Incremental {
	inc := &Incremental{
		c:        c,
		csr:      c.CSR(),
		fl:       fl,
		good:     sim.New(c),
		goodPO:   make([]logic.Value, c.NumPOs()),
		peekSim:  sim.New(c),
		peekPO:   make([]logic.Value, c.NumPOs()),
		sc:       newScratch(c),
		workers:  1,
		detected: make([]bool, len(fl)),
		detTime:  make([]int, len(fl)),
	}
	inc.goodState = inc.good.InitialState()
	inc.peekState = make([]logic.Value, c.NumDFFs())
	for i := range inc.detTime {
		inc.detTime[i] = Undetected
	}
	order := packOrder(c, fl)
	pb := newPlanBuilder(c)
	for start := 0; start < len(order); start += 64 {
		end := start + 64
		if end > len(order) {
			end = len(order)
		}
		g := group{
			fault: append([]int(nil), order[start:end]...),
			state: make([]logic.Word, c.NumDFFs()),
		}
		for i := range g.state {
			g.state[i] = logic.AllX()
		}
		g.alive = ^uint64(0)
		if n := end - start; n < 64 {
			g.alive = (uint64(1) << uint(n)) - 1
		}
		g.plan = pb.build(fl, g.fault)
		inc.groups = append(inc.groups, g)
	}
	return inc
}

// loadPlan populates sc's forcing-mask arrays for g, once per call. The
// arrays are reused across groups, so unloadPlan must clear them
// afterwards. Masks are pre-merged in the plan, so loading is a straight
// copy of the sparse lists, filtered down to the group's live lanes:
// dropped faults stop forcing anything, which is what lets their groups
// reach quiescence (dead lanes can never detect — every detection and
// divergence report is masked by the live mask — so the filtering is
// invisible in the results).
func (inc *Incremental) loadPlan(sc *scratch, g *group) {
	alive := g.alive
	for _, sm := range g.plan.stems {
		sc.stem0[sm.sig] = sm.m0 & alive
		sc.stem1[sm.sig] = sm.m1 & alive
	}
	for _, b := range g.plan.branches {
		if m0, m1 := b.m0&alive, b.m1&alive; m0|m1 != 0 {
			sc.branchAt[b.gate] = append(sc.branchAt[b.gate], pinForce{pin: b.pin, m0: m0, m1: m1})
		}
	}
	for _, df := range g.plan.dffForce {
		sc.dff0[df.dff] = df.m0 & alive
		sc.dff1[df.dff] = df.m1 & alive
	}
}

func (inc *Incremental) unloadPlan(sc *scratch, g *group) {
	for _, sm := range g.plan.stems {
		sc.stem0[sm.sig] = 0
		sc.stem1[sm.sig] = 0
	}
	for _, b := range g.plan.branches {
		sc.branchAt[b.gate] = sc.branchAt[b.gate][:0]
	}
	for _, df := range g.plan.dffForce {
		sc.dff0[df.dff] = 0
		sc.dff1[df.dff] = 0
	}
}

func forceWord(w logic.Word, m0, m1 uint64) logic.Word {
	if m0 != 0 {
		w = w.ForceValue(m0, logic.Zero)
	}
	if m1 != 0 {
		w = w.ForceValue(m1, logic.One)
	}
	return w
}

// goodTraceCommit advances the good machine through seq (committing its
// state) and snapshots the full signal-value vector at every time unit
// into the pooled trace arena.
func (inc *Incremental) goodTraceCommit(seq vectors.Sequence) [][]logic.Value {
	rows := inc.trace.ensure(len(seq), inc.c.NumSignals())
	for u, vec := range seq {
		inc.good.Step(inc.goodState, vec, inc.goodPO)
		copy(rows[u], inc.good.Values())
	}
	return rows
}

// goodTracePeek is goodTraceCommit without committing: the good machine
// state is copied and the pooled peek simulator advances the copy.
func (inc *Incremental) goodTracePeek(seq vectors.Sequence) [][]logic.Value {
	rows := inc.trace.ensure(len(seq), inc.c.NumSignals())
	copy(inc.peekState, inc.goodState)
	for u, vec := range seq {
		inc.peekSim.Step(inc.peekState, vec, inc.peekPO)
		copy(rows[u], inc.peekSim.Values())
	}
	return rows
}

// detection locates one newly detected fault in the canonical reporting
// schedule: relative time unit u, group index gi, lane within the group.
type detection struct {
	u, gi, lane int
}

// Extend simulates the vectors of seq (continuing from the current state),
// commits the resulting machine states, and returns the indices of newly
// detected faults. Detected faults are dropped from future simulation.
//
// With SetParallelism > 1 and more than one live group, the sharded
// scheduler in parallel.go runs instead; it returns identical detections
// in the identical order.
func (inc *Incremental) Extend(seq vectors.Sequence) []int {
	patternsApplied.Add(int64(len(seq)))
	if len(seq) == 0 {
		return nil
	}
	goodVals := inc.goodTraceCommit(seq)
	live := inc.liveGroups()
	if inc.workers > 1 && len(live) > 1 {
		return inc.extendParallel(seq, goodVals, live)
	}
	sc := inc.sc
	sc.dets = sc.dets[:0]
	for _, gi := range live {
		inc.extendGroup(sc, &inc.groups[gi], gi, seq, goodVals)
	}
	newly := inc.mergeDetections(sc.dets, len(seq))
	sc.dets = sc.dets[:0]
	sc.flushStats()
	return newly
}

// extendGroup simulates seq for one group, committing its state words and
// appending its detections (in relative time order) to sc.dets.
func (inc *Incremental) extendGroup(sc *scratch, g *group, gi int, seq vectors.Sequence, goodVals [][]logic.Value) {
	inc.loadPlan(sc, g)
	alive := g.alive
	var detAll uint64
	for u := range seq {
		var det uint64
		if inc.fullEval {
			det = inc.stepGroupFull(sc, g, seq[u], goodVals[u], g.state)
		} else {
			det = inc.stepGroup(sc, g, goodVals[u], g.state, &g.divDFF)
		}
		det = det & alive &^ detAll
		for m := det; m != 0; {
			lane := trailingZeros(m)
			m &^= 1 << uint(lane)
			sc.dets = append(sc.dets, detection{u: u, gi: gi, lane: lane})
		}
		detAll |= det
		if alive&^detAll == 0 {
			// Every lane of this group is detected; further vectors
			// cannot change its outcome.
			break
		}
	}
	inc.unloadPlan(sc, g)
}

// mergeDetections commits collected detections in the canonical reporting
// order — ascending time unit, then group index, then lane — updating the
// per-fault records and dropping detected lanes. It advances inc.now by
// seqLen and returns the newly detected fault indices.
func (inc *Incremental) mergeDetections(dets []detection, seqLen int) []int {
	sort.Slice(dets, func(i, j int) bool {
		a, b := dets[i], dets[j]
		if a.u != b.u {
			return a.u < b.u
		}
		if a.gi != b.gi {
			return a.gi < b.gi
		}
		return a.lane < b.lane
	})
	var newly []int
	for _, d := range dets {
		g := &inc.groups[d.gi]
		fi := g.fault[d.lane]
		inc.detected[fi] = true
		inc.detTime[fi] = inc.now + d.u
		inc.numDet++
		newly = append(newly, fi)
		g.alive &^= 1 << uint(d.lane)
	}
	inc.now += seqLen
	return newly
}

// Peek simulates seq from the current state without committing any state
// or detection bookkeeping, and returns the indices of live faults that
// seq would newly detect.
func (inc *Incremental) Peek(seq vectors.Sequence) []int {
	newly, _ := inc.Evaluate(seq)
	return newly
}

// Evaluate is Peek plus a search heuristic: divergence counts the live
// undetected faults whose machine state, after seq, definitely differs
// from the fault-free state in at least one flip-flop. Simulation-based
// test generators (the GA fitness of STRATEGATE and relatives) use this
// as a secondary objective — a candidate that drives fault effects into
// the state brings those faults closer to detection even when it detects
// nothing itself.
//
// Evaluate is the ATPG inner loop and is allocation-free in the steady
// state: the good-value trace, the peek simulator, and all propagation
// scratch are pooled on the Incremental; only a nonempty newly slice
// allocates.
func (inc *Incremental) Evaluate(seq vectors.Sequence) (newly []int, divergence int) {
	patternsApplied.Add(int64(len(seq)))
	if len(seq) == 0 {
		return nil, 0
	}
	goodVals := inc.goodTracePeek(seq)
	live := inc.liveGroups()
	if inc.workers > 1 && len(live) > 1 {
		return inc.evaluateParallel(seq, goodVals, live)
	}
	for _, gi := range live {
		g := &inc.groups[gi]
		detAll := inc.evaluateGroup(inc.sc, g, seq, goodVals, &divergence)
		for detAll != 0 {
			lane := trailingZeros(detAll)
			detAll &^= 1 << uint(lane)
			newly = append(newly, g.fault[lane])
		}
	}
	inc.sc.flushStats()
	return newly, divergence
}

// evaluateGroup simulates seq for one group without committing state,
// using sc's state buffer, and returns the mask of newly detected lanes.
// It adds the group's divergence contribution to *divergence.
func (inc *Incremental) evaluateGroup(sc *scratch, g *group, seq vectors.Sequence, goodVals [][]logic.Value, divergence *int) uint64 {
	if inc.fullEval {
		copy(sc.state, g.state)
	} else {
		sc.divDFF = sc.divDFF[:0]
		for _, di := range g.divDFF {
			sc.state[di] = g.state[di]
			sc.divDFF = append(sc.divDFF, di)
		}
	}
	alive := g.alive
	detAll := uint64(0)
	inc.loadPlan(sc, g)
	steps := 0
	for u := range seq {
		var det uint64
		if inc.fullEval {
			det = inc.stepGroupFull(sc, g, seq[u], goodVals[u], sc.state)
		} else {
			det = inc.stepGroup(sc, g, goodVals[u], sc.state, &sc.divDFF)
		}
		det = det & alive &^ detAll
		detAll |= det
		steps = u + 1
		if alive&^detAll == 0 {
			break
		}
	}
	inc.unloadPlan(sc, g)
	// Divergence: undetected live lanes whose state definitely differs
	// from the fault-free state after the last simulated vector.
	if steps == len(seq) && len(seq) > 0 {
		var diverged uint64
		goodFinal := goodVals[len(seq)-1]
		if inc.fullEval {
			for di, ff := range inc.c.DFFs {
				switch goodFinal[ff.D] {
				case logic.Zero:
					diverged |= sc.state[di].DefiniteOne()
				case logic.One:
					diverged |= sc.state[di].DefiniteZero()
				}
			}
		} else {
			// Flip-flops outside the diverged list equal the fault-free
			// state and cannot contribute.
			for _, di := range sc.divDFF {
				ff := inc.c.DFFs[di]
				switch goodFinal[ff.D] {
				case logic.Zero:
					diverged |= sc.state[di].DefiniteOne()
				case logic.One:
					diverged |= sc.state[di].DefiniteZero()
				}
			}
		}
		*divergence += popcount(diverged & alive &^ detAll)
	}
	return detAll
}

// popcount returns the number of set bits in x.
func popcount(x uint64) int { return bits.OnesCount64(x) }

// Result snapshots the detection state accumulated so far.
func (inc *Incremental) Result() Result {
	det := make([]bool, len(inc.detected))
	copy(det, inc.detected)
	dt := make([]int, len(inc.detTime))
	copy(dt, inc.detTime)
	return Result{Detected: det, DetTime: dt, NumDetected: inc.numDet}
}

// NumDetected returns the number of faults detected so far.
func (inc *Incremental) NumDetected() int { return inc.numDet }

// Now returns the number of time units simulated so far.
func (inc *Incremental) Now() int { return inc.now }

// GoodState returns the current fault-free flip-flop state (live view).
func (inc *Incremental) GoodState() []logic.Value { return inc.goodState }

// trailingZeros returns the index of the lowest set bit of x (x != 0).
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
