// Package fsim implements sequential stuck-at fault simulation.
//
// Two engines are provided:
//
//   - Engine (constructed by New with an Options block, see options.go;
//     the convenience Run wraps it): a parallel-fault simulator packing
//     64 faulty machines per logic.Word lane set — or 128/256 with
//     Options.Lanes — with fault dropping and first-detection-time
//     recording. Engine can carry machine state across calls, which the
//     ATPG substrate uses to evaluate candidate subsequences cheaply
//     from the current state.
//   - Single: a two-machine scalar simulator for one fault with early
//     exit on detection. Procedure 2 of the paper calls this in its inner
//     loop thousands of times, so it is allocation-free after creation.
//
// Both engines are active-region simulators in the PROOFS tradition:
// faults are packed into groups by structural locality, each group's
// static active region (the union of its faults' fanout cones, closed
// through flip-flops — see cone.go) is precomputed, and each time unit
// only the gates whose inputs actually diverged from the fault-free
// machine are evaluated, in level order (engine.go). Everything outside
// the diverged set provably carries the broadcast fault-free value, and a
// group whose machines all agree with the fault-free machine and whose
// fault sites are not activated is skipped outright (quiescence). A group
// whose recent activity shows the cone restriction is not paying — the
// feedback-heavy circuits where most of the netlist stays active — is
// escalated to the full-netlist stepper (fullpath.go), which is exactly
// the flat pre-cone engine. The results are bit-for-bit identical to
// full-netlist evaluation in every mode — the full path doubles as the
// Options.FullEvaluation reference and differential tests prove the
// equivalence.
//
// Detection semantics are the classical pessimistic three-valued rule,
// matching the paper's fault simulator: a fault is detected at time unit u
// when some primary output has a definite binary fault-free value and the
// definite opposite value in the faulty machine; X never detects. Both
// machines start in the all-unknown state ("the circuit state is unknown
// before the application of each expanded sequence").
package fsim

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/sim"
	"seqbist/internal/vectors"
)

// patternsApplied counts, process-wide, the input vectors (patterns) the
// simulation engines have applied: Engine counts each vector once per
// Extend/Evaluate call (simulating all live faults in parallel), Single
// counts the vectors of each per-fault simulation, so the total is a raw
// simulation-throughput measure, not a per-fault-pair count. It feeds the
// daemon's GET /metrics observability endpoint; the counter is
// deliberately global because one process hosts one daemon, and the
// bookkeeping must not thread through every simulation call site.
var patternsApplied atomic.Int64

// PatternsApplied returns the cumulative number of input vectors applied
// by the fault-simulation engines in this process (see patternsApplied
// for the counting semantics).
func PatternsApplied() int64 { return patternsApplied.Load() }

// Undetected is the detection time reported for faults a sequence does not
// detect.
const Undetected = -1

// Result reports the outcome of fault-simulating a sequence.
type Result struct {
	// Detected[i] reports whether fault i of the input list was detected.
	Detected []bool
	// DetTime[i] is the first time unit at which fault i was detected, or
	// Undetected.
	DetTime []int
	// NumDetected counts the detected faults.
	NumDetected int
}

// Coverage returns the fraction of faults detected.
func (r Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDetected) / float64(len(r.Detected))
}

// Run fault-simulates seq from the all-unknown state against the given
// fault list and returns per-fault detection results. It shards the fault
// groups across DefaultParallelism goroutines; the results are identical
// to any other worker count or lane width.
func Run(c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence) Result {
	return New(c, fl, Options{Workers: DefaultParallelism()}).Run(seq)
}

// group is one batch of up to 64 faults simulated bit-parallel, with the
// static simulation plan of its union active region. Wider lane widths
// use wgroup (wide.go) instead.
type group struct {
	fault []int // indices into the fault list, one per lane
	alive uint64

	plan plan

	// Machine state, sparse: state[di] is meaningful only for the
	// flip-flop indices listed in divDFF (the flip-flops whose word
	// differs from the broadcast fault-free state); every other flip-flop
	// is implicitly at the fault-free value. In full-evaluation mode
	// (Options.FullEvaluation) and while the group is escalated, state is
	// dense.
	state  []logic.Word
	divDFF []int32

	// lastEval is the gate count the previous time unit evaluated — the
	// activity predictor that picks the propagation structure (engine.go).
	lastEval int32

	// Escalation state (ModeAuto): hotCalls counts consecutive committing
	// calls whose average activity exceeded the escalation threshold;
	// escalated groups run the full-netlist stepper with dense state until
	// they reconverge (see noteActivity).
	hotCalls  int32
	escalated bool
}

// Engine is a parallel-fault simulator that retains machine state between
// calls. Construct it with New; an Engine is not safe for concurrent use,
// but all its methods are safe to call repeatedly and in any order.
type Engine struct {
	c   *netlist.Circuit
	csr *netlist.CSR
	fl  []faults.Fault

	opts Options
	nw   int // words per lane set: Options.Lanes / 64

	good      *sim.Simulator
	goodState []logic.Value
	goodPO    []logic.Value

	// Pooled non-committing good machine for Evaluate/Peek.
	peekSim   *sim.Simulator
	peekState []logic.Value
	peekPO    []logic.Value

	// entryGood snapshots the fault-free flip-flop state at the top of
	// every call, before the good machine advances: escalated groups
	// densify their sparse state against it (densifyState).
	entryGood []logic.Value

	// Pooled good-value trace, one row per time unit of the current call.
	trace goodTrace

	groups  []group  // 64-lane groups (nw == 1)
	wgroups []wgroup // wide groups (nw > 1, wide.go)
	liveBuf []int

	// sc is the serial path's scratch; the sharded scheduler draws one
	// private scratch per worker from workerScratch instead (parallel.go).
	sc            *scratch
	workers       int
	workerScratch []*scratch
	wsc           *wscratch
	workerWide    []*wscratch

	// Cone-aware static shards for the parallel scheduler: shards[w]
	// lists the group indices worker w owns (parallel.go). Rebuilt when
	// enough groups die that the balance drifts. conesBuf pools the
	// region-list view handed to netlist.ConePartition.
	shards    [][]int
	shardLive int
	conesBuf  [][]int32

	// fullEval selects the full-netlist evaluation path (fullpath.go);
	// the Options.FullEvaluation reference mode.
	fullEval bool

	// singleSim is the pooled scalar simulator behind Engine.Single.
	singleSim *Single

	// estat accumulates this engine's share of the efficiency counters;
	// Engine.Stats returns a snapshot. The process-wide counters
	// (stats.go) advance in the same flushes.
	estat SimStats

	detected []bool
	detTime  []int
	numDet   int
	now      int // absolute time units simulated so far

	// Pooled merge buffers for the parallel Evaluate path.
	newlyBuf [][]int
	divBuf   []int

	// stride memoizes earlyExitStride(c) for Run's chunking.
	stride int
}

// scratch holds the per-signal/gate/dff forcing masks, value words, and
// event-propagation state one simulation pass needs. The mask arrays are
// populated once per group per call (loadPlan/unloadPlan); each concurrent
// shard owns its own scratch so groups can be simulated in parallel
// without shared mutable state.
type scratch struct {
	stem0, stem1 []uint64
	branchAt     [][]pinForce // per gate
	dff0, dff1   []uint64     // per DFF
	words        []logic.Word // per-signal values (valid only when stamped)
	state        []logic.Word // per-DFF state for non-committing passes
	divDFF       []int32      // diverged-DFF list for non-committing passes

	// Active-region propagation scratch (engine.go). Epoch stamps avoid
	// clearing the arrays between time units; int32 keeps the hottest
	// random-access arrays cache-dense (see bumpEpoch for wraparound).
	epoch     int32
	sigEpoch  []int32   // per signal: stamped when diverged this time unit
	gateEpoch []int32   // per gate: stamped when queued this time unit
	buckets   [][]int32 // per-level gate worklists (queue mode)
	maxLev    int32     // deepest level queued this time unit
	newDiv    []int32

	dets []detection // per-call detection buffer (Extend)

	// Locally accumulated efficiency counters, flushed per call
	// (stats.go).
	evaluated int64
	skipped   int64
	quiescent int64
	escalated int64
}

func newScratch(c *netlist.Circuit) *scratch {
	return &scratch{
		stem0:     make([]uint64, c.NumSignals()),
		stem1:     make([]uint64, c.NumSignals()),
		branchAt:  make([][]pinForce, c.NumGates()),
		dff0:      make([]uint64, c.NumDFFs()),
		dff1:      make([]uint64, c.NumDFFs()),
		words:     make([]logic.Word, c.NumSignals()),
		state:     make([]logic.Word, c.NumDFFs()),
		sigEpoch:  make([]int32, c.NumSignals()),
		gateEpoch: make([]int32, c.NumGates()),
		buckets:   levelBuckets(c.CSR()),
	}
}

// levelBuckets allocates the per-level gate worklists at their exact
// worst-case capacities (every gate of the level queued), carved from one
// flat backing array. push can then never grow a bucket, so the queue
// mode allocates nothing after construction.
func levelBuckets(csr *netlist.CSR) [][]int32 {
	counts := make([]int32, csr.MaxLevel+1)
	for _, lev := range csr.Level {
		counts[lev]++
	}
	flat := make([]int32, len(csr.Level))
	buckets := make([][]int32, csr.MaxLevel+1)
	off := int32(0)
	for l := range buckets {
		buckets[l] = flat[off : off : off+counts[l]]
		off += counts[l]
	}
	return buckets
}

type pinForce struct {
	pin    int32
	m0, m1 uint64
}

// goodTrace is a pooled arena of per-time-unit fault-free value
// snapshots. One flat backing array is re-sliced into rows, so repeated
// Evaluate/Extend calls allocate nothing once the arena has grown to the
// longest sequence seen.
type goodTrace struct {
	rows [][]logic.Value
	flat []logic.Value
}

// ensure returns n rows of the given width, growing the arena as needed.
func (t *goodTrace) ensure(n, width int) [][]logic.Value {
	need := n * width
	if cap(t.flat) < need {
		t.flat = make([]logic.Value, need)
	}
	t.flat = t.flat[:need]
	if cap(t.rows) < n {
		t.rows = make([][]logic.Value, n)
	}
	t.rows = t.rows[:n]
	for i := range t.rows {
		t.rows[i] = t.flat[i*width : (i+1)*width]
	}
	return t.rows
}

// buildGroups packs the fault list into lane groups in locality order
// (packOrder) and precomputes each group's static active region, drawing
// all plan and state storage from the builder's slabs.
func (e *Engine) buildGroups() {
	c := e.c
	order := packOrder(c, e.fl)
	pb := newPlanBuilder(c, e.nw)
	lanes := 64 * e.nw
	for start := 0; start < len(order); start += lanes {
		end := start + lanes
		if end > len(order) {
			end = len(order)
		}
		n := end - start
		faultIdx := pb.faultSlab.alloc(n)
		copy(faultIdx, order[start:end])
		p := pb.build(e.fl, faultIdx)
		if e.nw == 1 {
			g := group{
				fault: faultIdx,
				state: pb.wordSlab.alloc(c.NumDFFs()),
				plan:  p,
			}
			for i := range g.state {
				g.state[i] = logic.AllX()
			}
			g.alive = ^uint64(0)
			if n < 64 {
				g.alive = (uint64(1) << uint(n)) - 1
			}
			e.groups = append(e.groups, g)
		} else {
			e.wgroups = append(e.wgroups, newWGroup(pb, faultIdx, p, n, c.NumDFFs()))
		}
	}
}

// loadPlan populates sc's forcing-mask arrays for g, once per call. The
// arrays are reused across groups, so unloadPlan must clear them
// afterwards. Masks are pre-merged in the plan, so loading is a straight
// copy of the sparse lists, filtered down to the group's live lanes:
// dropped faults stop forcing anything, which is what lets their groups
// reach quiescence (dead lanes can never detect — every detection and
// divergence report is masked by the live mask — so the filtering is
// invisible in the results).
func (e *Engine) loadPlan(sc *scratch, g *group) {
	alive := g.alive
	for _, sm := range g.plan.stems {
		sc.stem0[sm.sig] = sm.m0[0] & alive
		sc.stem1[sm.sig] = sm.m1[0] & alive
	}
	for _, b := range g.plan.branches {
		if m0, m1 := b.m0[0]&alive, b.m1[0]&alive; m0|m1 != 0 {
			sc.branchAt[b.gate] = append(sc.branchAt[b.gate], pinForce{pin: b.pin, m0: m0, m1: m1})
		}
	}
	for _, df := range g.plan.dffForce {
		sc.dff0[df.dff] = df.m0[0] & alive
		sc.dff1[df.dff] = df.m1[0] & alive
	}
}

func (e *Engine) unloadPlan(sc *scratch, g *group) {
	for _, sm := range g.plan.stems {
		sc.stem0[sm.sig] = 0
		sc.stem1[sm.sig] = 0
	}
	for _, b := range g.plan.branches {
		sc.branchAt[b.gate] = sc.branchAt[b.gate][:0]
	}
	for _, df := range g.plan.dffForce {
		sc.dff0[df.dff] = 0
		sc.dff1[df.dff] = 0
	}
}

func forceWord(w logic.Word, m0, m1 uint64) logic.Word {
	if m0 != 0 {
		w = w.ForceValue(m0, logic.Zero)
	}
	if m1 != 0 {
		w = w.ForceValue(m1, logic.One)
	}
	return w
}

// goodTraceCommit advances the good machine through seq (committing its
// state) and snapshots the full signal-value vector at every time unit
// into the pooled trace arena.
func (e *Engine) goodTraceCommit(seq vectors.Sequence) [][]logic.Value {
	rows := e.trace.ensure(len(seq), e.c.NumSignals())
	for u, vec := range seq {
		e.good.Step(e.goodState, vec, e.goodPO)
		copy(rows[u], e.good.Values())
	}
	return rows
}

// goodTracePeek is goodTraceCommit without committing: the good machine
// state is copied and the pooled peek simulator advances the copy.
func (e *Engine) goodTracePeek(seq vectors.Sequence) [][]logic.Value {
	rows := e.trace.ensure(len(seq), e.c.NumSignals())
	copy(e.peekState, e.goodState)
	for u, vec := range seq {
		e.peekSim.Step(e.peekState, vec, e.peekPO)
		copy(rows[u], e.peekSim.Values())
	}
	return rows
}

// detection locates one newly detected fault in the canonical reporting
// schedule: relative time unit u, group index gi, lane within the group.
// Lane numbering is word-major (lane = word*64 + bit), so the order is
// identical at every lane width.
type detection struct {
	u, gi, lane int
}

// Extend simulates the vectors of seq (continuing from the current state),
// commits the resulting machine states, and returns the indices of newly
// detected faults. Detected faults are dropped from future simulation.
//
// With Options.Workers > 1 and more than one live group, the cone-sharded
// scheduler in parallel.go runs instead; it returns identical detections
// in the identical order.
func (e *Engine) Extend(seq vectors.Sequence) []int {
	patternsApplied.Add(int64(len(seq)))
	e.estat.PatternsApplied += int64(len(seq))
	if len(seq) == 0 {
		return nil
	}
	copy(e.entryGood, e.goodState)
	goodVals := e.goodTraceCommit(seq)
	live := e.liveGroups()
	if e.workers > 1 && len(live) > 1 {
		return e.extendParallel(seq, goodVals, live)
	}
	if e.nw > 1 {
		wsc := e.wsc
		wsc.dets = wsc.dets[:0]
		for _, gi := range live {
			e.wextendGroup(wsc, &e.wgroups[gi], gi, seq, goodVals)
		}
		newly := e.mergeDetections(wsc.dets, len(seq))
		wsc.dets = wsc.dets[:0]
		wsc.flushInto(e)
		return newly
	}
	sc := e.sc
	sc.dets = sc.dets[:0]
	for _, gi := range live {
		e.extendGroup(sc, &e.groups[gi], gi, seq, goodVals)
	}
	newly := e.mergeDetections(sc.dets, len(seq))
	sc.dets = sc.dets[:0]
	sc.flushInto(e)
	return newly
}

// extendGroup simulates seq for one group, committing its state words and
// appending its detections (in relative time order) to sc.dets.
func (e *Engine) extendGroup(sc *scratch, g *group, gi int, seq vectors.Sequence, goodVals [][]logic.Value) {
	e.loadPlan(sc, g)
	alive := g.alive
	full := e.fullEval
	if g.escalated && !full {
		e.densifyState(g.state, g.divDFF, alive)
		full = true
	}
	evalBefore := sc.evaluated
	steps := 0
	var detAll uint64
	for u := range seq {
		var det uint64
		if full {
			det = e.stepGroupFull(sc, g, seq[u], goodVals[u], g.state)
		} else {
			det = e.stepGroup(sc, g, goodVals[u], g.state, &g.divDFF)
		}
		det = det & alive &^ detAll
		for m := det; m != 0; {
			lane := trailingZeros(m)
			m &^= 1 << uint(lane)
			sc.dets = append(sc.dets, detection{u: u, gi: gi, lane: lane})
		}
		detAll |= det
		steps = u + 1
		if alive&^detAll == 0 {
			// Every lane of this group is detected; further vectors
			// cannot change its outcome.
			break
		}
	}
	e.unloadPlan(sc, g)
	if g.escalated && !e.fullEval {
		// Convert the dense state back to the sparse representation
		// against the good flip-flop values after the last stepped unit;
		// a reconverged group de-escalates.
		e.sparsifyState(g, goodVals[steps-1], alive)
		if len(g.divDFF) == 0 {
			g.escalated = false
			g.hotCalls = 0
			g.lastEval = 0
		}
	} else if !e.fullEval {
		e.noteActivity(sc, g, sc.evaluated-evalBefore, steps)
	}
}

// Escalation thresholds (ModeAuto, 64-lane engine): a group escalates to
// the full-netlist stepper when its region spans at least
// escRegionNum/escRegionDen of the netlist AND its measured activity
// (gates evaluated per time unit) stays above escActivityNum/
// escActivityDen of the region for escalateAfter consecutive committing
// calls. Only then is the flat full walk — no boundary materialization,
// no sparse capture, no per-unit quiescence probing — cheaper than the
// region engine; for small regions the cone restriction always wins.
const (
	escRegionNum, escRegionDen     = 3, 4
	escActivityNum, escActivityDen = 1, 4
	escalateAfter                  = 2
)

// noteActivity updates the group's escalation predictor after a
// committing region-engine call that evaluated the given gate count over
// the given number of time units.
func (e *Engine) noteActivity(sc *scratch, g *group, evaluated int64, steps int) {
	if e.opts.Mode != ModeAuto || steps == 0 {
		return
	}
	region := len(g.plan.gates)
	if region*escRegionDen < e.c.NumGates()*escRegionNum {
		return
	}
	if evaluated*escActivityDen >= int64(region)*int64(steps)*escActivityNum {
		g.hotCalls++
		if g.hotCalls >= escalateAfter && !g.escalated {
			g.escalated = true
			sc.escalated++
		}
	} else {
		g.hotCalls = 0
	}
}

// densifyState converts a group's sparse state (state words valid only at
// divDFF entries, everything else implicitly fault-free) into the dense
// representation the full-netlist stepper reads, pinning dead lanes to
// the fault-free value. entryGood holds the fault-free flip-flop values
// at the start of the current call.
func (e *Engine) densifyState(state []logic.Word, divDFF []int32, alive uint64) {
	j := 0
	for di := range state {
		bg := bcast[e.entryGood[di]]
		if j < len(divDFF) && int(divDFF[j]) == di {
			state[di] = mixAlive(state[di], bg, alive)
			j++
		} else {
			state[di] = bg
		}
	}
}

// sparsifyState rebuilds a group's sparse diverged-DFF list from its
// dense state words against the fault-free values of the last simulated
// time unit (goodRow), pinning dead lanes so dropped faults go inert.
func (e *Engine) sparsifyState(g *group, goodRow []logic.Value, alive uint64) {
	g.divDFF = g.divDFF[:0]
	for di := range g.state {
		bg := bcast[goodRow[e.c.DFFs[di].D]]
		w := mixAlive(g.state[di], bg, alive)
		if w != bg {
			g.state[di] = w
			g.divDFF = append(g.divDFF, int32(di))
		}
	}
}

// mergeDetections commits collected detections in the canonical reporting
// order — ascending time unit, then group index, then lane — updating the
// per-fault records and dropping detected lanes. It advances e.now by
// seqLen and returns the newly detected fault indices.
func (e *Engine) mergeDetections(dets []detection, seqLen int) []int {
	sort.Slice(dets, func(i, j int) bool {
		a, b := dets[i], dets[j]
		if a.u != b.u {
			return a.u < b.u
		}
		if a.gi != b.gi {
			return a.gi < b.gi
		}
		return a.lane < b.lane
	})
	var newly []int
	for _, d := range dets {
		var fi int
		if e.nw > 1 {
			g := &e.wgroups[d.gi]
			fi = g.fault[d.lane]
			g.dropLane(d.lane)
		} else {
			g := &e.groups[d.gi]
			fi = g.fault[d.lane]
			g.alive &^= 1 << uint(d.lane)
		}
		e.detected[fi] = true
		e.detTime[fi] = e.now + d.u
		e.numDet++
		newly = append(newly, fi)
	}
	e.now += seqLen
	return newly
}

// Peek simulates seq from the current state without committing any state
// or detection bookkeeping, and returns the indices of live faults that
// seq would newly detect.
func (e *Engine) Peek(seq vectors.Sequence) []int {
	newly, _ := e.Evaluate(seq)
	return newly
}

// Evaluate is Peek plus a search heuristic: divergence counts the live
// undetected faults whose machine state, after seq, definitely differs
// from the fault-free state in at least one flip-flop. Simulation-based
// test generators (the GA fitness of STRATEGATE and relatives) use this
// as a secondary objective — a candidate that drives fault effects into
// the state brings those faults closer to detection even when it detects
// nothing itself.
//
// Evaluate is the ATPG inner loop and is allocation-free in the steady
// state: the good-value trace, the peek simulator, and all propagation
// scratch are pooled on the Engine; only a nonempty newly slice
// allocates.
func (e *Engine) Evaluate(seq vectors.Sequence) (newly []int, divergence int) {
	patternsApplied.Add(int64(len(seq)))
	e.estat.PatternsApplied += int64(len(seq))
	if len(seq) == 0 {
		return nil, 0
	}
	copy(e.entryGood, e.goodState)
	goodVals := e.goodTracePeek(seq)
	live := e.liveGroups()
	if e.workers > 1 && len(live) > 1 {
		return e.evaluateParallel(seq, goodVals, live)
	}
	if e.nw > 1 {
		for _, gi := range live {
			g := &e.wgroups[gi]
			e.wevaluateGroup(e.wsc, g, seq, goodVals, &divergence)
			newly = appendDetected(newly, g.fault, e.wsc.detAll)
		}
		e.wsc.flushInto(e)
		return newly, divergence
	}
	for _, gi := range live {
		g := &e.groups[gi]
		detAll := e.evaluateGroup(e.sc, g, seq, goodVals, &divergence)
		for detAll != 0 {
			lane := trailingZeros(detAll)
			detAll &^= 1 << uint(lane)
			newly = append(newly, g.fault[lane])
		}
	}
	e.sc.flushInto(e)
	return newly, divergence
}

// evaluateGroup simulates seq for one group without committing state,
// using sc's state buffer, and returns the mask of newly detected lanes.
// It adds the group's divergence contribution to *divergence.
func (e *Engine) evaluateGroup(sc *scratch, g *group, seq vectors.Sequence, goodVals [][]logic.Value, divergence *int) uint64 {
	full := e.fullEval || g.escalated
	if e.fullEval {
		copy(sc.state, g.state)
	} else if g.escalated {
		// Non-committing densification: expand the sparse state into the
		// scratch state buffer, leaving the group's own words untouched.
		copy(sc.state, g.state)
		e.densifyState(sc.state, g.divDFF, g.alive)
	} else {
		sc.divDFF = sc.divDFF[:0]
		for _, di := range g.divDFF {
			sc.state[di] = g.state[di]
			sc.divDFF = append(sc.divDFF, di)
		}
	}
	alive := g.alive
	detAll := uint64(0)
	e.loadPlan(sc, g)
	steps := 0
	for u := range seq {
		var det uint64
		if full {
			det = e.stepGroupFull(sc, g, seq[u], goodVals[u], sc.state)
		} else {
			det = e.stepGroup(sc, g, goodVals[u], sc.state, &sc.divDFF)
		}
		det = det & alive &^ detAll
		detAll |= det
		steps = u + 1
		if alive&^detAll == 0 {
			break
		}
	}
	e.unloadPlan(sc, g)
	// Divergence: undetected live lanes whose state definitely differs
	// from the fault-free state after the last simulated vector.
	if steps == len(seq) && len(seq) > 0 {
		var diverged uint64
		goodFinal := goodVals[len(seq)-1]
		if full {
			for di, ff := range e.c.DFFs {
				switch goodFinal[ff.D] {
				case logic.Zero:
					diverged |= sc.state[di].DefiniteOne()
				case logic.One:
					diverged |= sc.state[di].DefiniteZero()
				}
			}
		} else {
			// Flip-flops outside the diverged list equal the fault-free
			// state and cannot contribute.
			for _, di := range sc.divDFF {
				ff := e.c.DFFs[di]
				switch goodFinal[ff.D] {
				case logic.Zero:
					diverged |= sc.state[di].DefiniteOne()
				case logic.One:
					diverged |= sc.state[di].DefiniteZero()
				}
			}
		}
		*divergence += popcount(diverged & alive &^ detAll)
	}
	return detAll
}

// popcount returns the number of set bits in x.
func popcount(x uint64) int { return bits.OnesCount64(x) }

// Result snapshots the detection state accumulated so far.
func (e *Engine) Result() Result {
	det := make([]bool, len(e.detected))
	copy(det, e.detected)
	dt := make([]int, len(e.detTime))
	copy(dt, e.detTime)
	return Result{Detected: det, DetTime: dt, NumDetected: e.numDet}
}

// NumDetected returns the number of faults detected so far.
func (e *Engine) NumDetected() int { return e.numDet }

// Now returns the number of time units simulated so far.
func (e *Engine) Now() int { return e.now }

// GoodState returns the current fault-free flip-flop state (live view).
func (e *Engine) GoodState() []logic.Value { return e.goodState }

// trailingZeros returns the index of the lowest set bit of x (x != 0).
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
