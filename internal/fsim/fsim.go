// Package fsim implements sequential stuck-at fault simulation.
//
// Two engines are provided:
//
//   - Incremental (and the convenience Run): a parallel-fault simulator
//     packing 64 faulty machines per pass into logic.Word lanes, with
//     fault dropping and first-detection-time recording. Incremental can
//     carry machine state across calls, which the ATPG substrate uses to
//     evaluate candidate subsequences cheaply from the current state.
//   - Single: a two-machine scalar simulator for one fault with early
//     exit on detection. Procedure 2 of the paper calls this in its inner
//     loop thousands of times, so it is allocation-free after creation.
//
// Detection semantics are the classical pessimistic three-valued rule,
// matching the paper's fault simulator: a fault is detected at time unit u
// when some primary output has a definite binary fault-free value and the
// definite opposite value in the faulty machine; X never detects. Both
// machines start in the all-unknown state ("the circuit state is unknown
// before the application of each expanded sequence").
package fsim

import (
	"math/bits"
	"sync/atomic"

	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/sim"
	"seqbist/internal/vectors"
)

// patternsApplied counts, process-wide, the input vectors (patterns) the
// simulation engines have applied: Incremental counts each vector once
// per Extend/Evaluate call (simulating all live faults in parallel),
// Single counts the vectors of each per-fault simulation, so the total is
// a raw simulation-throughput measure, not a per-fault-pair count. It
// feeds the daemon's GET /metrics observability endpoint; the counter is
// deliberately global because one process hosts one daemon, and the
// bookkeeping must not thread through every simulation call site.
var patternsApplied atomic.Int64

// PatternsApplied returns the cumulative number of input vectors applied
// by the fault-simulation engines in this process (see patternsApplied
// for the counting semantics).
func PatternsApplied() int64 { return patternsApplied.Load() }

// Undetected is the detection time reported for faults a sequence does not
// detect.
const Undetected = -1

// Result reports the outcome of fault-simulating a sequence.
type Result struct {
	// Detected[i] reports whether fault i of the input list was detected.
	Detected []bool
	// DetTime[i] is the first time unit at which fault i was detected, or
	// Undetected.
	DetTime []int
	// NumDetected counts the detected faults.
	NumDetected int
}

// Coverage returns the fraction of faults detected.
func (r Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDetected) / float64(len(r.Detected))
}

// Run fault-simulates seq from the all-unknown state against the given
// fault list and returns per-fault detection results. It shards the fault
// groups across DefaultParallelism goroutines; the results are identical
// to the serial path (RunParallel with workers=1).
func Run(c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence) Result {
	return RunParallel(c, fl, seq, DefaultParallelism())
}

// RunParallel is Run with an explicit goroutine count for the group-sharded
// scheduler. workers <= 1 selects the serial path; any worker count yields
// bit-for-bit identical detection results.
func RunParallel(c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence, workers int) Result {
	inc := NewIncremental(c, fl)
	inc.SetParallelism(workers)
	// Chunked extension with early exit: once every fault is detected the
	// rest of the sequence cannot change the Result.
	const chunk = 32
	for start := 0; start < len(seq); start += chunk {
		if inc.NumDetected() == len(fl) {
			break
		}
		end := start + chunk
		if end > len(seq) {
			end = len(seq)
		}
		inc.Extend(seq[start:end])
	}
	return inc.Result()
}

// group is one batch of up to 64 faults simulated bit-parallel.
type group struct {
	fault []int // indices into the fault list, one per lane
	alive uint64

	// Injection plan. stemTouched lists signals with stem forcing;
	// stem0/stem1 are indexed by signal.
	stemTouched []netlist.SignalID
	branchGates []int32 // gates with branch-forced pins
	dffTouched  []int32

	state []logic.Word // per DFF
}

// Incremental is a parallel-fault simulator that retains machine state
// between calls.
type Incremental struct {
	c  *netlist.Circuit
	fl []faults.Fault

	good      *sim.Simulator
	goodState []logic.Value
	goodPO    []logic.Value

	groups []group

	// sc is the serial path's scratch; the sharded scheduler draws one
	// private scratch per worker from workerScratch instead (parallel.go).
	sc            *scratch
	workers       int
	workerScratch []*scratch

	detected []bool
	detTime  []int
	numDet   int
	now      int // absolute time units simulated so far
}

// scratch holds the per-signal/gate/dff forcing masks and value words one
// simulation pass needs. The mask arrays are repopulated per group
// (loadPlan/unloadPlan); each concurrent shard owns its own scratch so
// groups can be simulated in parallel without shared mutable state.
type scratch struct {
	stem0, stem1 []uint64
	branchAt     [][]pinForce // per gate
	dff0, dff1   []uint64     // per DFF
	words        []logic.Word // per-signal values
	state        []logic.Word // per-DFF state for non-committing passes
}

func newScratch(c *netlist.Circuit) *scratch {
	return &scratch{
		stem0:    make([]uint64, c.NumSignals()),
		stem1:    make([]uint64, c.NumSignals()),
		branchAt: make([][]pinForce, c.NumGates()),
		dff0:     make([]uint64, c.NumDFFs()),
		dff1:     make([]uint64, c.NumDFFs()),
		words:    make([]logic.Word, c.NumSignals()),
		state:    make([]logic.Word, c.NumDFFs()),
	}
}

type pinForce struct {
	pin    int32
	m0, m1 uint64
}

// NewIncremental prepares a simulator for the given circuit and fault
// list. The initial state of every machine is all-unknown.
func NewIncremental(c *netlist.Circuit, fl []faults.Fault) *Incremental {
	inc := &Incremental{
		c:        c,
		fl:       fl,
		good:     sim.New(c),
		goodPO:   make([]logic.Value, c.NumPOs()),
		sc:       newScratch(c),
		workers:  1,
		detected: make([]bool, len(fl)),
		detTime:  make([]int, len(fl)),
	}
	inc.goodState = inc.good.InitialState()
	for i := range inc.detTime {
		inc.detTime[i] = Undetected
	}
	for start := 0; start < len(fl); start += 64 {
		end := start + 64
		if end > len(fl) {
			end = len(fl)
		}
		g := group{state: make([]logic.Word, c.NumDFFs())}
		for i := range g.state {
			g.state[i] = logic.AllX()
		}
		for i := start; i < end; i++ {
			g.fault = append(g.fault, i)
		}
		g.alive = ^uint64(0)
		if n := end - start; n < 64 {
			g.alive = (uint64(1) << uint(n)) - 1
		}
		inc.buildPlan(&g)
		inc.groups = append(inc.groups, g)
	}
	return inc
}

// buildPlan records which signals/pins each lane's fault forces.
func (inc *Incremental) buildPlan(g *group) {
	c := inc.c
	seenStem := make(map[netlist.SignalID]bool)
	seenGate := make(map[int32]bool)
	seenDFF := make(map[int32]bool)
	for lane, fi := range g.fault {
		f := inc.fl[fi]
		if f.IsStem() {
			if !seenStem[f.Signal] {
				seenStem[f.Signal] = true
				g.stemTouched = append(g.stemTouched, f.Signal)
			}
			continue
		}
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			if !seenGate[con.Index] {
				seenGate[con.Index] = true
				g.branchGates = append(g.branchGates, con.Index)
			}
		case netlist.ConsumerDFF:
			if !seenDFF[con.Index] {
				seenDFF[con.Index] = true
				g.dffTouched = append(g.dffTouched, con.Index)
			}
		}
		_ = lane
	}
}

// loadPlan populates sc's forcing-mask arrays for g. The arrays are reused
// across groups, so unloadPlan must clear them afterwards.
func (inc *Incremental) loadPlan(sc *scratch, g *group) {
	c := inc.c
	for lane, fi := range g.fault {
		f := inc.fl[fi]
		mask := uint64(1) << uint(lane)
		if f.IsStem() {
			if f.Stuck == logic.Zero {
				sc.stem0[f.Signal] |= mask
			} else {
				sc.stem1[f.Signal] |= mask
			}
			continue
		}
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			var m0, m1 uint64
			if f.Stuck == logic.Zero {
				m0 = mask
			} else {
				m1 = mask
			}
			merged := false
			for i := range sc.branchAt[con.Index] {
				pf := &sc.branchAt[con.Index][i]
				if pf.pin == con.Pin {
					pf.m0 |= m0
					pf.m1 |= m1
					merged = true
					break
				}
			}
			if !merged {
				sc.branchAt[con.Index] = append(sc.branchAt[con.Index],
					pinForce{pin: con.Pin, m0: m0, m1: m1})
			}
		case netlist.ConsumerDFF:
			if f.Stuck == logic.Zero {
				sc.dff0[con.Index] |= mask
			} else {
				sc.dff1[con.Index] |= mask
			}
		}
	}
}

func (inc *Incremental) unloadPlan(sc *scratch, g *group) {
	for _, sig := range g.stemTouched {
		sc.stem0[sig] = 0
		sc.stem1[sig] = 0
	}
	for _, gi := range g.branchGates {
		sc.branchAt[gi] = sc.branchAt[gi][:0]
	}
	for _, di := range g.dffTouched {
		sc.dff0[di] = 0
		sc.dff1[di] = 0
	}
}

func forceWord(w logic.Word, m0, m1 uint64) logic.Word {
	if m0 != 0 {
		w = w.ForceValue(m0, logic.Zero)
	}
	if m1 != 0 {
		w = w.ForceValue(m1, logic.One)
	}
	return w
}

// Extend simulates the vectors of seq (continuing from the current state),
// commits the resulting machine states, and returns the indices of newly
// detected faults. Detected faults are dropped from future simulation.
//
// With SetParallelism > 1 and more than one live group, the sharded
// scheduler in parallel.go runs instead; it returns identical detections
// in the identical order.
func (inc *Incremental) Extend(seq vectors.Sequence) []int {
	patternsApplied.Add(int64(len(seq)))
	if inc.workers > 1 && len(seq) > 0 {
		if live := inc.liveGroups(); len(live) > 1 {
			return inc.extendParallel(seq, live)
		}
	}
	var newly []int
	for _, vec := range seq {
		// Advance the good machine one step.
		inc.good.Step(inc.goodState, vec, inc.goodPO)
		goodVals := inc.good.Values()
		for gi := range inc.groups {
			g := &inc.groups[gi]
			if g.alive == 0 {
				continue
			}
			inc.loadPlan(inc.sc, g)
			det := inc.stepGroup(inc.sc, g, vec, goodVals, g.state)
			inc.unloadPlan(inc.sc, g)
			for det != 0 {
				lane := trailingZeros(det)
				det &^= 1 << uint(lane)
				fi := g.fault[lane]
				inc.detected[fi] = true
				inc.detTime[fi] = inc.now
				inc.numDet++
				newly = append(newly, fi)
				g.alive &^= 1 << uint(lane)
			}
		}
		inc.now++
	}
	return newly
}

// Peek simulates seq from the current state without committing any state
// or detection bookkeeping, and returns the indices of live faults that
// seq would newly detect.
func (inc *Incremental) Peek(seq vectors.Sequence) []int {
	newly, _ := inc.Evaluate(seq)
	return newly
}

// Evaluate is Peek plus a search heuristic: divergence counts the live
// undetected faults whose machine state, after seq, definitely differs
// from the fault-free state in at least one flip-flop. Simulation-based
// test generators (the GA fitness of STRATEGATE and relatives) use this
// as a secondary objective — a candidate that drives fault effects into
// the state brings those faults closer to detection even when it detects
// nothing itself.
func (inc *Incremental) Evaluate(seq vectors.Sequence) (newly []int, divergence int) {
	patternsApplied.Add(int64(len(seq)))
	goodState := make([]logic.Value, len(inc.goodState))
	copy(goodState, inc.goodState)
	goodPO := make([]logic.Value, inc.c.NumPOs())
	peekSim := sim.New(inc.c)

	// Per-group simulation over the whole candidate, so plans are loaded
	// once per group rather than once per group per vector. The good
	// machine trace is computed first.
	goodValsByTime := make([][]logic.Value, len(seq))
	for u, vec := range seq {
		peekSim.Step(goodState, vec, goodPO)
		vals := peekSim.Values()
		snapshot := make([]logic.Value, len(vals))
		copy(snapshot, vals)
		goodValsByTime[u] = snapshot
	}

	if inc.workers > 1 && len(seq) > 0 {
		if live := inc.liveGroups(); len(live) > 1 {
			return inc.evaluateParallel(seq, goodValsByTime, live)
		}
	}

	for gi := range inc.groups {
		g := &inc.groups[gi]
		if g.alive == 0 {
			continue
		}
		detAll := inc.evaluateGroup(inc.sc, g, seq, goodValsByTime, &divergence)
		for detAll != 0 {
			lane := trailingZeros(detAll)
			detAll &^= 1 << uint(lane)
			newly = append(newly, g.fault[lane])
		}
	}
	return newly, divergence
}

// evaluateGroup simulates seq for one group without committing state,
// using sc's state buffer, and returns the mask of newly detected lanes.
// It adds the group's divergence contribution to *divergence.
func (inc *Incremental) evaluateGroup(sc *scratch, g *group, seq vectors.Sequence, goodValsByTime [][]logic.Value, divergence *int) uint64 {
	copy(sc.state, g.state)
	alive := g.alive
	detAll := uint64(0)
	inc.loadPlan(sc, g)
	steps := 0
	for u, vec := range seq {
		det := inc.stepGroup(sc, g, vec, goodValsByTime[u], sc.state) & alive &^ detAll
		detAll |= det
		steps = u + 1
		if alive&^detAll == 0 {
			break
		}
	}
	inc.unloadPlan(sc, g)
	// Divergence: undetected live lanes whose state definitely differs
	// from the fault-free state after the last simulated vector.
	if steps == len(seq) && len(seq) > 0 {
		var diverged uint64
		goodFinal := goodValsByTime[len(seq)-1]
		for di, ff := range inc.c.DFFs {
			switch goodFinal[ff.D] {
			case logic.Zero:
				diverged |= sc.state[di].DefiniteOne()
			case logic.One:
				diverged |= sc.state[di].DefiniteZero()
			}
		}
		*divergence += popcount(diverged & alive &^ detAll)
	}
	return detAll
}

// popcount returns the number of set bits in x.
func popcount(x uint64) int { return bits.OnesCount64(x) }

// stepGroup evaluates one time unit for group g using sc's scratch words
// and the given flip-flop state words (updated in place), and returns the
// mask of lanes detected at a primary output this cycle. Forcing plans
// must already be loaded into sc.
func (inc *Incremental) stepGroup(sc *scratch, g *group, vec vectors.Vector, goodVals []logic.Value, state []logic.Word) uint64 {
	c := inc.c
	words := sc.words
	for i, pi := range c.PIs {
		w := logic.Broadcast(vec[i])
		if m0, m1 := sc.stem0[pi], sc.stem1[pi]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		words[pi] = w
	}
	for i, ff := range c.DFFs {
		w := state[i]
		if m0, m1 := sc.stem0[ff.Q], sc.stem1[ff.Q]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		words[ff.Q] = w
	}
	for gi := range c.Gates {
		gate := &c.Gates[gi]
		var v logic.Word
		if bf := sc.branchAt[gi]; len(bf) != 0 {
			v = evalForced(words, gate, bf)
		} else {
			v = words[gate.In[0]]
			switch gate.Type {
			case netlist.Buf:
			case netlist.Not:
				v = v.Not()
			case netlist.And:
				for _, in := range gate.In[1:] {
					v = v.And(words[in])
				}
			case netlist.Nand:
				for _, in := range gate.In[1:] {
					v = v.And(words[in])
				}
				v = v.Not()
			case netlist.Or:
				for _, in := range gate.In[1:] {
					v = v.Or(words[in])
				}
			case netlist.Nor:
				for _, in := range gate.In[1:] {
					v = v.Or(words[in])
				}
				v = v.Not()
			case netlist.Xor:
				for _, in := range gate.In[1:] {
					v = v.Xor(words[in])
				}
			case netlist.Xnor:
				for _, in := range gate.In[1:] {
					v = v.Xor(words[in])
				}
				v = v.Not()
			}
		}
		if m0, m1 := sc.stem0[gate.Out], sc.stem1[gate.Out]; m0|m1 != 0 {
			v = forceWord(v, m0, m1)
		}
		words[gate.Out] = v
	}
	// Detection at primary outputs.
	var det uint64
	for _, po := range c.POs {
		switch goodVals[po] {
		case logic.Zero:
			det |= words[po].DefiniteOne()
		case logic.One:
			det |= words[po].DefiniteZero()
		}
	}
	// Capture next state.
	for i, ff := range c.DFFs {
		w := words[ff.D]
		if m0, m1 := sc.dff0[i], sc.dff1[i]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		state[i] = w
	}
	return det & g.alive
}

// evalForced evaluates a gate whose input pins carry branch-forced lanes.
func evalForced(words []logic.Word, gate *netlist.Gate, bf []pinForce) logic.Word {
	in := func(pin int) logic.Word {
		w := words[gate.In[pin]]
		for i := range bf {
			if int(bf[i].pin) == pin {
				w = forceWord(w, bf[i].m0, bf[i].m1)
			}
		}
		return w
	}
	v := in(0)
	switch gate.Type {
	case netlist.Buf:
	case netlist.Not:
		v = v.Not()
	case netlist.And, netlist.Nand:
		for p := 1; p < len(gate.In); p++ {
			v = v.And(in(p))
		}
		if gate.Type == netlist.Nand {
			v = v.Not()
		}
	case netlist.Or, netlist.Nor:
		for p := 1; p < len(gate.In); p++ {
			v = v.Or(in(p))
		}
		if gate.Type == netlist.Nor {
			v = v.Not()
		}
	case netlist.Xor, netlist.Xnor:
		for p := 1; p < len(gate.In); p++ {
			v = v.Xor(in(p))
		}
		if gate.Type == netlist.Xnor {
			v = v.Not()
		}
	}
	return v
}

// Result snapshots the detection state accumulated so far.
func (inc *Incremental) Result() Result {
	det := make([]bool, len(inc.detected))
	copy(det, inc.detected)
	dt := make([]int, len(inc.detTime))
	copy(dt, inc.detTime)
	return Result{Detected: det, DetTime: dt, NumDetected: inc.numDet}
}

// NumDetected returns the number of faults detected so far.
func (inc *Incremental) NumDetected() int { return inc.numDet }

// Now returns the number of time units simulated so far.
func (inc *Incremental) Now() int { return inc.now }

// GoodState returns the current fault-free flip-flop state (live view).
func (inc *Incremental) GoodState() []logic.Value { return inc.goodState }

// trailingZeros returns the index of the lowest set bit of x (x != 0).
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
