package fsim

import (
	"reflect"
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// These tests pin the multi-word fault-packing engine (wide.go), the
// forced propagation modes, and the escalation heuristic against the
// same contract as the 64-lane engine: bit-for-bit identity with the
// full-evaluation reference, at every lane width, worker count, and
// mode, under binary and X-heavy stimuli.

// TestWideLanesMatchFullRegistry runs the wide engines over every
// registry circuit against the 64-lane full-evaluation reference.
func TestWideLanesMatchFullRegistry(t *testing.T) {
	for _, name := range iscas.Names() {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		n := 60
		if c.NumGates() > 1000 {
			n = 24
		}
		if testing.Short() && c.NumGates() > 1000 {
			continue
		}
		rng := xrand.New(uint64(len(name)) * 1299709)
		bin := vectors.RandomSequence(rng, c.NumPIs(), n)
		xh := xheavySequence(rng, c.NumPIs(), n)
		for _, lanes := range []int{128, 256} {
			diffCheckOpts(t, name, c, fl, bin, Options{Lanes: lanes})
			diffCheckOpts(t, name+"/xheavy", c, fl, xh, Options{Lanes: lanes})
		}
	}
}

// TestWideLanesSharded repeats the wide differential under the
// cone-sharded scheduler.
func TestWideLanesSharded(t *testing.T) {
	for _, name := range []string{"s298", "s1423"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		seq := vectors.RandomSequence(xrand.New(2424), c.NumPIs(), 60)
		for _, w := range []int{2, 4} {
			for _, lanes := range []int{128, 256} {
				diffCheckOpts(t, name, c, fl, seq, Options{Workers: w, Lanes: lanes})
			}
		}
	}
}

// TestWideLanesRandomNetlists runs the wide differential over synthetic
// pseudo-random circuits and the uncollapsed fault universe (all three
// site kinds) with X-heavy stimuli.
func TestWideLanesRandomNetlists(t *testing.T) {
	shapes := []iscas.Spec{
		{Name: "rnd-w1", PIs: 4, POs: 3, DFFs: 5, Gates: 45, Synthetic: true, Seed: 404},
		{Name: "rnd-w2", PIs: 6, POs: 4, DFFs: 8, Gates: 85, Synthetic: true, Seed: 505},
	}
	for _, spec := range shapes {
		c, err := iscas.Synthesize(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		fl := faults.Universe(c)
		rng := xrand.New(spec.Seed)
		for trial := 0; trial < 3; trial++ {
			seq := xheavySequence(rng, c.NumPIs(), 12+rng.Intn(20))
			for _, lanes := range []int{128, 256} {
				diffCheckOpts(t, spec.Name, c, fl, seq, Options{Lanes: lanes})
			}
		}
	}
}

// TestLaneWidthInvariance pins the canonical detection order directly:
// whole-run Results must be identical at 64, 128, and 256 lanes, for
// serial and sharded schedules.
func TestLaneWidthInvariance(t *testing.T) {
	for _, name := range []string{"s298", "s526", "s1423"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		seq := vectors.RandomSequence(xrand.New(606), c.NumPIs(), 80)
		want := New(c, fl, Options{}).Run(seq)
		for _, lanes := range []int{128, 256} {
			for _, w := range []int{1, 3} {
				got := New(c, fl, Options{Lanes: lanes, Workers: w}).Run(seq)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: Result differs at lanes=%d workers=%d", name, lanes, w)
				}
			}
		}
	}
}

// TestForcedModesMatchFull pins ModeQueue and ModeDense: each forced
// propagation structure must match the reference on its own, at 64 and
// 128 lanes.
func TestForcedModesMatchFull(t *testing.T) {
	for _, name := range []string{"s298", "s526"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		rng := xrand.New(707)
		bin := vectors.RandomSequence(rng, c.NumPIs(), 40)
		xh := xheavySequence(rng, c.NumPIs(), 40)
		for _, mode := range []Mode{ModeQueue, ModeDense} {
			for _, lanes := range []int{64, 128} {
				opts := Options{Mode: mode, Lanes: lanes}
				diffCheckOpts(t, name+"/"+mode.String(), c, fl, bin, opts)
				diffCheckOpts(t, name+"/"+mode.String()+"/xheavy", c, fl, xh, opts)
			}
		}
	}
}

// TestEngineRunReuse pins the Options-API contract that an Engine is
// reusable: two Run calls on one engine must equal a fresh engine's Run,
// and an Extend after a Run must start from the reset state.
func TestEngineRunReuse(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	seq := vectors.RandomSequence(xrand.New(808), c.NumPIs(), 50)
	e := New(c, fl, Options{Workers: 2})
	first := e.Run(seq)
	second := e.Run(seq)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("second Run on the same engine differs from the first")
	}
	fresh := New(c, fl, Options{}).Run(seq)
	if !reflect.DeepEqual(first, fresh) {
		t.Fatal("reused engine differs from a fresh engine")
	}
}

// TestOptionsValidation pins the constructor's panics on meaningless
// configurations and the zero-value defaults.
func TestOptionsValidation(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	if got := New(c, fl, Options{}).Options(); got.Workers != 1 || got.Lanes != 64 {
		t.Fatalf("normalized zero Options = %+v, want Workers=1 Lanes=64", got)
	}
	mustPanic := func(name string, opts Options) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		New(c, fl, opts)
	}
	mustPanic("lanes=32", Options{Lanes: 32})
	mustPanic("lanes=100", Options{Lanes: 100})
	mustPanic("lanes=-64", Options{Lanes: -64})
	mustPanic("mode=99", Options{Mode: Mode(99)})
	mustPanic("full+wide", Options{Lanes: 128, FullEvaluation: true})
}
