package fsim

import (
	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/sim"
	"seqbist/internal/vectors"
)

// Single is an allocation-free two-machine (fault-free + one faulty)
// scalar simulator with early exit on detection. It exists for
// Procedure 2 of the paper, which checks a single target fault against
// thousands of candidate expanded sequences.
//
// Like the parallel engine it is an active-region simulator: the
// fault-free machine is evaluated normally, and the faulty machine is
// propagated event-driven from the injection site and the diverged
// flip-flops, reading every undiverged signal from the fault-free
// machine. A cycle in which no flip-flop diverges and the fault site is
// not activated (fault-free site value definitely equals the stuck value)
// costs one fault-free evaluation and nothing else.
type Single struct {
	c    *netlist.Circuit
	csr  *netlist.CSR
	good *sim.Simulator

	goodState []logic.Value
	goodPO    []logic.Value

	// Faulty-machine sparse state: badVals/badState entries are valid
	// only where stamped/listed.
	badVals  []logic.Value
	badState []logic.Value
	divDFF   []int32
	newDiv   []int32

	epoch     int64
	sigEpoch  []int64
	gateEpoch []int64
	capEpoch  []int64
	buckets   [][]int32
	capList   []int32
}

// NewSingle returns a Single simulator for c.
func NewSingle(c *netlist.Circuit) *Single {
	return &Single{
		c:         c,
		csr:       c.CSR(),
		good:      sim.New(c),
		goodState: make([]logic.Value, c.NumDFFs()),
		goodPO:    make([]logic.Value, c.NumPOs()),
		badVals:   make([]logic.Value, c.NumSignals()),
		badState:  make([]logic.Value, c.NumDFFs()),
		sigEpoch:  make([]int64, c.NumSignals()),
		gateEpoch: make([]int64, c.NumGates()),
		capEpoch:  make([]int64, c.NumDFFs()),
		buckets:   make([][]int32, c.CSR().MaxLevel+1),
	}
}

// injection is the decoded forcing site of one fault.
type injection struct {
	stemSig    netlist.SignalID // forced stem signal, or -1
	branchGate int32            // gate with a forced input pin, or -1
	branchPin  int32
	branchDFF  int32 // flip-flop with a forced D pin, or -1
	seedGate   int32 // gate to queue unconditionally, or -1
	stuck      logic.Value
}

func (s *Single) decode(f faults.Fault) injection {
	inj := injection{stemSig: -1, branchGate: -1, branchPin: -1, branchDFF: -1, seedGate: -1, stuck: f.Stuck}
	if f.IsStem() {
		inj.stemSig = f.Signal
		if d := s.c.Driver(f.Signal); d >= 0 {
			inj.seedGate = int32(d)
		}
		return inj
	}
	con := s.c.Consumers(f.Signal)[f.Consumer]
	switch con.Kind {
	case netlist.ConsumerGate:
		inj.branchGate = con.Index
		inj.branchPin = con.Pin
		inj.seedGate = con.Index
	case netlist.ConsumerDFF:
		inj.branchDFF = con.Index
	}
	return inj
}

// Detects reports whether fault f is detected by seq applied from the
// all-unknown state, and the first detection time unit (or Undetected).
func (s *Single) Detects(f faults.Fault, seq vectors.Sequence) (bool, int) {
	c, csr := s.c, s.csr
	inj := s.decode(f)
	stuck := inj.stuck
	for i := range s.goodState {
		s.goodState[i] = logic.X
	}
	s.divDFF = s.divDFF[:0]

	for u, vec := range seq {
		// Fault-free machine: full evaluation (its values are the lazy
		// source for every undiverged faulty-machine signal).
		s.good.Step(s.goodState, vec, s.goodPO)
		goodVals := s.good.Values()

		// Quiescence: the faulty machine tracks the fault-free machine
		// exactly while nothing has diverged and the site is inactive.
		if len(s.divDFF) == 0 && goodVals[f.Signal] == stuck {
			continue
		}

		s.epoch++
		epoch := s.epoch
		maxLev := int32(0)
		detected := false
		push := func(gi int32) {
			if s.gateEpoch[gi] != epoch {
				s.gateEpoch[gi] = epoch
				lev := csr.Level[gi]
				s.buckets[lev] = append(s.buckets[lev], gi)
				if lev > maxLev {
					maxLev = lev
				}
			}
		}
		s.capList = s.capList[:0]
		addCap := func(di int32) {
			if s.capEpoch[di] != epoch {
				s.capEpoch[di] = epoch
				s.capList = append(s.capList, di)
			}
		}
		activate := func(sig int32, v logic.Value) {
			s.badVals[sig] = v
			s.sigEpoch[sig] = epoch
			id := netlist.SignalID(sig)
			if gv := goodVals[sig]; gv.IsBinary() && v.IsBinary() && gv != v &&
				len(csr.POFanout(id)) > 0 {
				detected = true
			}
			for _, gi := range csr.GateFanout(id) {
				push(gi)
			}
			for _, di := range csr.DFFFanout(id) {
				addCap(di)
			}
		}

		// Seeds: diverged flip-flop outputs, the activated stem site, the
		// forced gate, and the forced flip-flop.
		for _, di := range s.divDFF {
			q := c.DFFs[di].Q
			bv := s.badState[di]
			if q == inj.stemSig {
				bv = stuck
			}
			if bv != goodVals[q] {
				activate(int32(q), bv)
			}
			addCap(di)
		}
		if inj.stemSig >= 0 && s.sigEpoch[inj.stemSig] != epoch &&
			c.Driver(inj.stemSig) < 0 && goodVals[inj.stemSig] != stuck {
			// Stem on a primary input or flip-flop output; stems on gate
			// outputs are applied when the driver gate (always queued
			// below) is evaluated.
			activate(int32(inj.stemSig), stuck)
		}
		if inj.seedGate >= 0 {
			push(inj.seedGate)
		}
		if inj.branchDFF >= 0 {
			addCap(inj.branchDFF)
		}

		// Levelized event propagation of the faulty machine.
		for lev := int32(1); lev <= maxLev; lev++ {
			bucket := s.buckets[lev]
			for bi := 0; bi < len(bucket); bi++ {
				gi := bucket[bi]
				ins := csr.In[csr.InOff[gi]:csr.InOff[gi+1]]
				in := func(p int) logic.Value {
					if gi == inj.branchGate && int32(p) == inj.branchPin {
						return stuck
					}
					sig := ins[p]
					if s.sigEpoch[sig] == epoch {
						return s.badVals[sig]
					}
					return goodVals[sig]
				}
				v := in(0)
				switch csr.Type[gi] {
				case netlist.Buf:
				case netlist.Not:
					v = v.Not()
				case netlist.And, netlist.Nand:
					for p := 1; p < len(ins); p++ {
						v = v.And(in(p))
					}
					if csr.Type[gi] == netlist.Nand {
						v = v.Not()
					}
				case netlist.Or, netlist.Nor:
					for p := 1; p < len(ins); p++ {
						v = v.Or(in(p))
					}
					if csr.Type[gi] == netlist.Nor {
						v = v.Not()
					}
				case netlist.Xor, netlist.Xnor:
					for p := 1; p < len(ins); p++ {
						v = v.Xor(in(p))
					}
					if csr.Type[gi] == netlist.Xnor {
						v = v.Not()
					}
				}
				out := csr.Out[gi]
				if netlist.SignalID(out) == inj.stemSig {
					v = stuck
				}
				if v != goodVals[out] {
					activate(out, v)
				}
			}
			s.buckets[lev] = bucket[:0]
		}

		if detected {
			patternsApplied.Add(int64(u + 1))
			return true, u
		}

		// Capture the faulty next state sparsely; the fault-free next
		// state was already captured by the good simulator's Step.
		s.newDiv = s.newDiv[:0]
		for _, di := range s.capList {
			d := c.DFFs[di].D
			bv := goodVals[d]
			if s.sigEpoch[d] == epoch {
				bv = s.badVals[d]
			}
			if int32(di) == inj.branchDFF {
				bv = stuck
			}
			if bv != goodVals[d] {
				s.badState[di] = bv
				s.newDiv = append(s.newDiv, di)
			}
		}
		s.divDFF, s.newDiv = s.newDiv, s.divDFF[:0]
	}
	patternsApplied.Add(int64(len(seq)))
	return false, Undetected
}

// POTrace simulates fault f under seq and returns the faulty machine's
// primary-output values at every time unit. It allocates one slice per
// time unit; it exists for response-compaction analysis (package bist),
// not for the hot detection path, and runs the faulty machine densely.
func (s *Single) POTrace(f faults.Fault, seq vectors.Sequence) [][]logic.Value {
	c := s.c
	trace := make([][]logic.Value, 0, len(seq))
	badState := make([]logic.Value, c.NumDFFs())
	badVals := make([]logic.Value, c.NumSignals())
	for i := range badState {
		badState[i] = logic.X
	}
	stemSig := netlist.SignalID(-1)
	branchGate, branchPin := -1, int32(-1)
	branchDFF := -1
	if f.IsStem() {
		stemSig = f.Signal
	} else {
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			branchGate = int(con.Index)
			branchPin = con.Pin
		case netlist.ConsumerDFF:
			branchDFF = int(con.Index)
		}
	}
	stuck := f.Stuck
	for _, vec := range seq {
		for i, pi := range c.PIs {
			v := vec[i]
			if pi == stemSig {
				v = stuck
			}
			badVals[pi] = v
		}
		for i, ff := range c.DFFs {
			v := badState[i]
			if ff.Q == stemSig {
				v = stuck
			}
			badVals[ff.Q] = v
		}
		for gi := range c.Gates {
			g := &c.Gates[gi]
			var bv logic.Value
			if gi == branchGate {
				bv = evalScalar(g, badVals, branchGate, branchPin, stuck)
			} else {
				bv = evalScalar(g, badVals, -1, 0, logic.Invalid)
			}
			if g.Out == stemSig {
				bv = stuck
			}
			badVals[g.Out] = bv
		}
		po := make([]logic.Value, c.NumPOs())
		for i, sig := range c.POs {
			po[i] = badVals[sig]
		}
		trace = append(trace, po)
		for i, ff := range c.DFFs {
			v := badVals[ff.D]
			if i == branchDFF {
				v = stuck
			}
			badState[i] = v
		}
	}
	return trace
}

// evalScalar evaluates one gate over vals. When gi matches forcedGate, the
// input value at forcedPin is replaced by forced before evaluation.
func evalScalar(g *netlist.Gate, vals []logic.Value, forcedGate int, forcedPin int32, forced logic.Value) logic.Value {
	in := func(p int) logic.Value {
		if forcedGate >= 0 && int32(p) == forcedPin {
			return forced
		}
		return vals[g.In[p]]
	}
	v := in(0)
	switch g.Type {
	case netlist.Buf:
	case netlist.Not:
		v = v.Not()
	case netlist.And, netlist.Nand:
		for p := 1; p < len(g.In); p++ {
			v = v.And(in(p))
		}
		if g.Type == netlist.Nand {
			v = v.Not()
		}
	case netlist.Or, netlist.Nor:
		for p := 1; p < len(g.In); p++ {
			v = v.Or(in(p))
		}
		if g.Type == netlist.Nor {
			v = v.Not()
		}
	case netlist.Xor, netlist.Xnor:
		for p := 1; p < len(g.In); p++ {
			v = v.Xor(in(p))
		}
		if g.Type == netlist.Xnor {
			v = v.Not()
		}
	}
	return v
}
