package fsim

import (
	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// Single is an allocation-free two-machine (fault-free + one faulty)
// scalar simulator with early exit on detection. It exists for
// Procedure 2 of the paper, which checks a single target fault against
// thousands of candidate expanded sequences.
type Single struct {
	c *netlist.Circuit

	goodVals, badVals   []logic.Value
	goodState, badState []logic.Value
}

// NewSingle returns a Single simulator for c.
func NewSingle(c *netlist.Circuit) *Single {
	return &Single{
		c:         c,
		goodVals:  make([]logic.Value, c.NumSignals()),
		badVals:   make([]logic.Value, c.NumSignals()),
		goodState: make([]logic.Value, c.NumDFFs()),
		badState:  make([]logic.Value, c.NumDFFs()),
	}
}

// Detects reports whether fault f is detected by seq applied from the
// all-unknown state, and the first detection time unit (or Undetected).
func (s *Single) Detects(f faults.Fault, seq vectors.Sequence) (bool, int) {
	c := s.c
	for i := range s.goodState {
		s.goodState[i] = logic.X
		s.badState[i] = logic.X
	}

	// Decode the fault's injection points once.
	stemSig := netlist.SignalID(-1)
	branchGate, branchPin := -1, int32(-1)
	branchDFF := -1
	if f.IsStem() {
		stemSig = f.Signal
	} else {
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			branchGate = int(con.Index)
			branchPin = con.Pin
		case netlist.ConsumerDFF:
			branchDFF = int(con.Index)
		}
	}
	stuck := f.Stuck

	for u, vec := range seq {
		// Load PIs.
		for i, pi := range c.PIs {
			v := vec[i]
			s.goodVals[pi] = v
			if pi == stemSig {
				v = stuck
			}
			s.badVals[pi] = v
		}
		// Load flip-flop outputs.
		for i, ff := range c.DFFs {
			s.goodVals[ff.Q] = s.goodState[i]
			v := s.badState[i]
			if ff.Q == stemSig {
				v = stuck
			}
			s.badVals[ff.Q] = v
		}
		// Evaluate gates.
		for gi := range c.Gates {
			g := &c.Gates[gi]
			s.goodVals[g.Out] = evalScalar(g, s.goodVals, -1, 0, logic.Invalid)
			var bv logic.Value
			if gi == branchGate {
				bv = evalScalar(g, s.badVals, branchGate, branchPin, stuck)
			} else {
				bv = evalScalar(g, s.badVals, -1, 0, logic.Invalid)
			}
			if g.Out == stemSig {
				bv = stuck
			}
			s.badVals[g.Out] = bv
		}
		// Observe primary outputs.
		for _, po := range c.POs {
			gv, bv := s.goodVals[po], s.badVals[po]
			if gv.IsBinary() && bv.IsBinary() && gv != bv {
				patternsApplied.Add(int64(u + 1))
				return true, u
			}
		}
		// Capture next state.
		for i, ff := range c.DFFs {
			s.goodState[i] = s.goodVals[ff.D]
			v := s.badVals[ff.D]
			if i == branchDFF {
				v = stuck
			}
			s.badState[i] = v
		}
	}
	patternsApplied.Add(int64(len(seq)))
	return false, Undetected
}

// POTrace simulates fault f under seq and returns the faulty machine's
// primary-output values at every time unit. It allocates one slice per
// time unit; it exists for response-compaction analysis (package bist),
// not for the hot detection path.
func (s *Single) POTrace(f faults.Fault, seq vectors.Sequence) [][]logic.Value {
	c := s.c
	trace := make([][]logic.Value, 0, len(seq))
	for i := range s.goodState {
		s.goodState[i] = logic.X
		s.badState[i] = logic.X
	}
	stemSig := netlist.SignalID(-1)
	branchGate, branchPin := -1, int32(-1)
	branchDFF := -1
	if f.IsStem() {
		stemSig = f.Signal
	} else {
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			branchGate = int(con.Index)
			branchPin = con.Pin
		case netlist.ConsumerDFF:
			branchDFF = int(con.Index)
		}
	}
	stuck := f.Stuck
	for _, vec := range seq {
		for i, pi := range c.PIs {
			v := vec[i]
			if pi == stemSig {
				v = stuck
			}
			s.badVals[pi] = v
		}
		for i, ff := range c.DFFs {
			v := s.badState[i]
			if ff.Q == stemSig {
				v = stuck
			}
			s.badVals[ff.Q] = v
		}
		for gi := range c.Gates {
			g := &c.Gates[gi]
			var bv logic.Value
			if gi == branchGate {
				bv = evalScalar(g, s.badVals, branchGate, branchPin, stuck)
			} else {
				bv = evalScalar(g, s.badVals, -1, 0, logic.Invalid)
			}
			if g.Out == stemSig {
				bv = stuck
			}
			s.badVals[g.Out] = bv
		}
		po := make([]logic.Value, c.NumPOs())
		for i, sig := range c.POs {
			po[i] = s.badVals[sig]
		}
		trace = append(trace, po)
		for i, ff := range c.DFFs {
			v := s.badVals[ff.D]
			if i == branchDFF {
				v = stuck
			}
			s.badState[i] = v
		}
	}
	return trace
}

// evalScalar evaluates one gate over vals. When gi matches forcedGate, the
// input value at forcedPin is replaced by forced before evaluation.
func evalScalar(g *netlist.Gate, vals []logic.Value, forcedGate int, forcedPin int32, forced logic.Value) logic.Value {
	in := func(p int) logic.Value {
		if forcedGate >= 0 && int32(p) == forcedPin {
			return forced
		}
		return vals[g.In[p]]
	}
	v := in(0)
	switch g.Type {
	case netlist.Buf:
	case netlist.Not:
		v = v.Not()
	case netlist.And, netlist.Nand:
		for p := 1; p < len(g.In); p++ {
			v = v.And(in(p))
		}
		if g.Type == netlist.Nand {
			v = v.Not()
		}
	case netlist.Or, netlist.Nor:
		for p := 1; p < len(g.In); p++ {
			v = v.Or(in(p))
		}
		if g.Type == netlist.Nor {
			v = v.Not()
		}
	case netlist.Xor, netlist.Xnor:
		for p := 1; p < len(g.In); p++ {
			v = v.Xor(in(p))
		}
		if g.Type == netlist.Xnor {
			v = v.Not()
		}
	}
	return v
}
