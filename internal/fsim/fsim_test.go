package fsim

import (
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// s27T0 is the test sequence for s27 from the paper's Table 2.
func s27T0() vectors.Sequence {
	return vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
}

// TestPaperTable2Distribution is a keystone reproduction test: simulating
// the paper's Table 2 sequence on s27 must detect all 32 collapsed faults
// with first-detection times distributed exactly as printed in the paper:
//
//	u=1: 9 faults   u=2: 4   u=4: 1   u=5: 11   u=6: 2   u=8: 3   u=9: 2
func TestPaperTable2Distribution(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	res := Run(c, fl, s27T0())
	if res.NumDetected != 32 {
		t.Fatalf("detected %d/32 faults", res.NumDetected)
	}
	byTime := make(map[int]int)
	for i := range fl {
		byTime[res.DetTime[i]]++
	}
	want := map[int]int{1: 9, 2: 4, 4: 1, 5: 11, 6: 2, 8: 3, 9: 2}
	for u := 0; u < 10; u++ {
		if byTime[u] != want[u] {
			t.Errorf("time unit %d: %d detections, want %d", u, byTime[u], want[u])
		}
	}
}

func TestCoverage(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	res := Run(c, fl, s27T0())
	if res.Coverage() != 1.0 {
		t.Errorf("coverage = %v, want 1.0", res.Coverage())
	}
	empty := Run(c, fl, nil)
	if empty.NumDetected != 0 || empty.Coverage() != 0 {
		t.Errorf("empty sequence detected %d faults", empty.NumDetected)
	}
}

func TestPrefixMonotonicity(t *testing.T) {
	// A prefix of a sequence detects a subset of the faults, with
	// identical detection times for the common part.
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := s27T0()
	full := Run(c, fl, t0)
	for cut := 0; cut <= t0.Len(); cut += 3 {
		prefix := Run(c, fl, t0[:cut])
		for i := range fl {
			if prefix.Detected[i] {
				if !full.Detected[i] {
					t.Fatalf("fault %d detected by prefix but not full sequence", i)
				}
				if prefix.DetTime[i] != full.DetTime[i] {
					t.Fatalf("fault %d: prefix det time %d, full %d", i, prefix.DetTime[i], full.DetTime[i])
				}
			}
			if full.Detected[i] && full.DetTime[i] < cut && !prefix.Detected[i] {
				t.Fatalf("fault %d detected at %d by full run but missed by prefix of %d", i, full.DetTime[i], cut)
			}
		}
	}
}

// TestSingleMatchesParallel cross-checks the scalar early-exit simulator
// against the 64-lane parallel simulator on every s27 fault and on random
// sequences.
func TestSingleMatchesParallel(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	single := NewSingle(c)
	rng := xrand.New(99)
	seqs := []vectors.Sequence{s27T0()}
	for i := 0; i < 10; i++ {
		seqs = append(seqs, vectors.RandomSequence(rng, c.NumPIs(), 5+rng.Intn(20)))
	}
	for si, seq := range seqs {
		par := Run(c, fl, seq)
		for i, f := range fl {
			det, at := single.Detects(f, seq)
			if det != par.Detected[i] || (det && at != par.DetTime[i]) {
				t.Fatalf("seq %d fault %s: single (%v,%d) vs parallel (%v,%d)",
					si, f.Name(c), det, at, par.Detected[i], par.DetTime[i])
			}
		}
	}
}

func TestSingleMatchesParallelSynthetic(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	single := NewSingle(c)
	rng := xrand.New(7)
	seq := vectors.RandomSequence(rng, c.NumPIs(), 40)
	par := Run(c, fl, seq)
	// Spot-check a deterministic sample of faults (every 7th).
	for i := 0; i < len(fl); i += 7 {
		det, at := single.Detects(fl[i], seq)
		if det != par.Detected[i] || (det && at != par.DetTime[i]) {
			t.Fatalf("fault %s: single (%v,%d) vs parallel (%v,%d)",
				fl[i].Name(c), det, at, par.Detected[i], par.DetTime[i])
		}
	}
}

func TestIncrementalExtendMatchesOneShot(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := s27T0()
	oneShot := Run(c, fl, t0)

	inc := New(c, fl, Options{})
	inc.Extend(t0[:3])
	inc.Extend(t0[3:7])
	inc.Extend(t0[7:])
	split := inc.Result()

	for i := range fl {
		if split.Detected[i] != oneShot.Detected[i] || split.DetTime[i] != oneShot.DetTime[i] {
			t.Fatalf("fault %d: split (%v,%d) vs one-shot (%v,%d)", i,
				split.Detected[i], split.DetTime[i], oneShot.Detected[i], oneShot.DetTime[i])
		}
	}
	if inc.Now() != t0.Len() {
		t.Errorf("Now() = %d, want %d", inc.Now(), t0.Len())
	}
}

func TestPeekDoesNotCommit(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := s27T0()

	inc := New(c, fl, Options{})
	inc.Extend(t0[:2])
	before := inc.Result()

	peeked := inc.Peek(t0[2:])
	after := inc.Result()
	for i := range fl {
		if before.Detected[i] != after.Detected[i] {
			t.Fatal("Peek changed detection state")
		}
	}
	if inc.Now() != 2 {
		t.Fatal("Peek advanced time")
	}

	// Peek's prediction must match what Extend then reports.
	newly := inc.Extend(t0[2:])
	if len(peeked) != len(newly) {
		t.Fatalf("Peek predicted %d new detections, Extend delivered %d", len(peeked), len(newly))
	}
	seen := make(map[int]bool)
	for _, fi := range peeked {
		seen[fi] = true
	}
	for _, fi := range newly {
		if !seen[fi] {
			t.Fatalf("Extend detected fault %d that Peek missed", fi)
		}
	}
}

func TestExtendReturnsNewlyDetected(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	inc := New(c, fl, Options{})
	newly := inc.Extend(s27T0())
	if len(newly) != 32 {
		t.Fatalf("Extend returned %d newly detected, want 32", len(newly))
	}
	// A second pass over the same vectors detects nothing new.
	newly = inc.Extend(s27T0())
	if len(newly) != 0 {
		t.Errorf("re-extension re-detected %d faults", len(newly))
	}
}

func TestBranchVsStemFaultDiffer(t *testing.T) {
	// In s27, G14 feeds both G8 (AND) and G10 (NOR). Construct the stem
	// fault G14 SA1 and the branch fault G14->G10 SA1. They must generally
	// produce different detection behaviour.
	c := iscas.S27()
	g14, _ := c.SignalByName("G14")
	g10, _ := c.SignalByName("G10")
	var branch faults.Fault
	found := false
	for ci, con := range c.Consumers(g14) {
		if con.Kind == netlist.ConsumerGate && c.Gates[con.Index].Out == g10 {
			branch = faults.Fault{Signal: g14, Consumer: int32(ci), Stuck: 2 /* logic.One */}
			found = true
		}
	}
	if !found {
		t.Fatal("no G14->G10 branch")
	}
	stem := faults.Fault{Signal: g14, Consumer: faults.StemConsumer, Stuck: 2}

	rng := xrand.New(12345)
	differ := false
	single := NewSingle(c)
	for i := 0; i < 50 && !differ; i++ {
		seq := vectors.RandomSequence(rng, c.NumPIs(), 8)
		d1, u1 := single.Detects(stem, seq)
		d2, u2 := single.Detects(branch, seq)
		if d1 != d2 || u1 != u2 {
			differ = true
		}
	}
	if !differ {
		t.Error("stem and branch fault behaved identically on 50 random sequences; injection suspect")
	}
}

func TestDFFBranchFaultInjected(t *testing.T) {
	// A stuck-at on a DFF D-pin branch must corrupt the next state.
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	hasDFFBranch := false
	for _, f := range fl {
		if !f.IsStem() {
			con := c.Consumers(f.Signal)[f.Consumer]
			if con.Kind == netlist.ConsumerDFF {
				hasDFFBranch = true
			}
		}
	}
	// s27's fanout signals feed only gates, so synthesize a tiny case.
	src := `INPUT(a)
OUTPUT(y)
OUTPUT(z)
q = DFF(n)
n = NOT(a)
y = BUFF(q)
z = AND(n, a)
`
	_ = hasDFFBranch
	c2 := mustParse(t, src)
	n, _ := c2.SignalByName("n")
	var dffBranch faults.Fault
	found := false
	for ci, con := range c2.Consumers(n) {
		if con.Kind == netlist.ConsumerDFF {
			dffBranch = faults.Fault{Signal: n, Consumer: int32(ci), Stuck: 2}
			found = true
		}
	}
	if !found {
		t.Fatal("no DFF branch site on n")
	}
	// With a=1 forever: n=0, so good y=0 from u=1 on; faulty D pin stuck
	// at 1 makes y=1: detected at u=1. The other branch (z = AND(n,a))
	// stays fault-free, so only the state path differs.
	seq := vectors.MustParseSequence("1 1 1")
	single := NewSingle(c2)
	det, at := single.Detects(dffBranch, seq)
	if !det || at != 1 {
		t.Errorf("DFF branch fault: detected=%v at %d, want true at 1", det, at)
	}
	par := Run(c2, []faults.Fault{dffBranch}, seq)
	if !par.Detected[0] || par.DetTime[0] != 1 {
		t.Errorf("parallel: detected=%v at %d", par.Detected[0], par.DetTime[0])
	}
}

func TestPIStemFault(t *testing.T) {
	c := mustParse(t, `INPUT(a)
OUTPUT(y)
y = BUFF(a)
`)
	a, _ := c.SignalByName("a")
	f := faults.Fault{Signal: a, Consumer: faults.StemConsumer, Stuck: 1 /* Zero */}
	single := NewSingle(c)
	det, at := single.Detects(f, vectors.MustParseSequence("0 1"))
	if !det || at != 1 {
		t.Errorf("PI SA0 under input 1: detected=%v at %d, want true at 1", det, at)
	}
}

func TestUndetectableFaultStaysUndetected(t *testing.T) {
	// y = OR(a, na) with na = NOT(a) is constant 1; y SA1 is undetectable.
	c := mustParse(t, `INPUT(a)
OUTPUT(y)
na = NOT(a)
y = OR(a, na)
`)
	y, _ := c.SignalByName("y")
	f := faults.Fault{Signal: y, Consumer: faults.StemConsumer, Stuck: 2}
	res := Run(c, []faults.Fault{f}, vectors.MustParseSequence("0 1 0 1"))
	if res.Detected[0] {
		t.Error("undetectable fault reported detected")
	}
}

func TestAccessors(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	inc := New(c, fl, Options{})
	if len(inc.GoodState()) != c.NumDFFs() {
		t.Errorf("GoodState length %d", len(inc.GoodState()))
	}
	inc.Extend(s27T0()[:2])
	// After two vectors of the Table 2 sequence the good state is (0,1,0)
	// (verified independently in package sim).
	st := inc.GoodState()
	if st[0].String()+st[1].String()+st[2].String() != "010" {
		t.Errorf("good state = %v%v%v, want 010", st[0], st[1], st[2])
	}
}

func TestPOTraceMatchesDetection(t *testing.T) {
	// POTrace must show the faulty value diverging exactly where Detects
	// reports the first detection.
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := s27T0()
	single := NewSingle(c)
	good := Run(c, fl, t0)
	checked := 0
	for i, f := range fl {
		if !good.Detected[i] {
			continue
		}
		checked++
		trace := single.POTrace(f, t0)
		if len(trace) != t0.Len() {
			t.Fatalf("trace length %d", len(trace))
		}
		// At the detection time at least one PO must be the definite
		// complement of the fault-free value; before it, none may be.
		det, at := single.Detects(f, t0)
		if !det || at != good.DetTime[i] {
			t.Fatalf("fault %d inconsistency", i)
		}
		goodTrace := simGoodPOs(c, t0)
		diverged := false
		for _, po := range trace[at] {
			_ = po
		}
		for k := range trace[at] {
			gv, bv := goodTrace[at][k], trace[at][k]
			if gv.IsBinary() && bv.IsBinary() && gv != bv {
				diverged = true
			}
		}
		if !diverged {
			t.Fatalf("fault %s: POTrace shows no divergence at detection time %d", f.Name(c), at)
		}
		if checked > 8 {
			break
		}
	}
}

func TestManyFaultsAcrossGroupBoundary(t *testing.T) {
	// s298's collapsed universe exceeds 64 faults, exercising multi-group
	// bookkeeping; verify group-boundary faults agree with Single.
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	if len(fl) <= 130 {
		t.Fatalf("want > 130 faults to span 3 groups, got %d", len(fl))
	}
	seq := vectors.RandomSequence(xrand.New(31), c.NumPIs(), 30)
	par := Run(c, fl, seq)
	single := NewSingle(c)
	for _, i := range []int{0, 63, 64, 65, 127, 128, len(fl) - 1} {
		det, at := single.Detects(fl[i], seq)
		if det != par.Detected[i] || (det && at != par.DetTime[i]) {
			t.Errorf("fault %d (%s): single (%v,%d) vs parallel (%v,%d)",
				i, fl[i].Name(c), det, at, par.Detected[i], par.DetTime[i])
		}
	}
}
