package fsim

import (
	"reflect"
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestDeprecatedShims pins the one-release compatibility surface: the old
// mutable Incremental API must behave exactly like the Options
// constructor it wraps.
func TestDeprecatedShims(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	seq := vectors.RandomSequence(xrand.New(11), c.NumPIs(), 60)

	want := New(c, fl, Options{Workers: 2}).Run(seq)
	if got := RunParallel(c, fl, seq, 2); !reflect.DeepEqual(got, want) {
		t.Fatal("RunParallel differs from Options-constructed Run")
	}

	inc := NewIncremental(c, fl)
	if opts := inc.Options(); opts.Workers != 1 || opts.Lanes != 64 || opts.FullEvaluation {
		t.Fatalf("NewIncremental options = %+v, want serial 64-lane defaults", opts)
	}
	inc.SetParallelism(-3)
	if got := inc.Parallelism(); got != 1 {
		t.Fatalf("Parallelism after SetParallelism(-3) = %d, want 1", got)
	}
	inc.SetParallelism(4)
	if got := inc.Options().Workers; got != 4 {
		t.Fatalf("Options().Workers after SetParallelism(4) = %d, want 4", got)
	}
	inc.Extend(seq)
	if got := inc.Result(); !reflect.DeepEqual(got, want) {
		t.Fatal("shimmed Incremental differs from Options-constructed Run")
	}
}

// TestSetFullEvaluationPanicsAfterStart pins the shim's contract: the two
// paths represent state differently, so flipping after simulation has
// started must panic.
func TestSetFullEvaluationPanicsAfterStart(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	inc := NewIncremental(c, fl)
	inc.Extend(s27T0()[:2])
	defer func() {
		if recover() == nil {
			t.Error("SetFullEvaluation after Extend did not panic")
		}
	}()
	inc.SetFullEvaluation(true)
}

// TestSetFullEvaluationRejectsWideLanes pins the shim's lane-width guard.
func TestSetFullEvaluationRejectsWideLanes(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	e := New(c, fl, Options{Lanes: 128})
	defer func() {
		if recover() == nil {
			t.Error("SetFullEvaluation on a 128-lane engine did not panic")
		}
	}()
	e.SetFullEvaluation(true)
}
