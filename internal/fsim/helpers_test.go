package fsim

import (
	"testing"

	"seqbist/internal/bench"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/sim"
	"seqbist/internal/vectors"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// simGoodPOs returns the fault-free PO values per time unit.
func simGoodPOs(c *netlist.Circuit, seq vectors.Sequence) [][]logic.Value {
	s := sim.New(c)
	tr := s.Run(seq)
	return tr.POs
}
