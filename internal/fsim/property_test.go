package fsim

import (
	"testing"
	"testing/quick"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestChunkingInvariance: splitting a sequence across any series of
// Extend calls must produce identical detection results — machine state
// carries exactly.
func TestChunkingInvariance(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	f := func(seed uint64, cuts [4]uint8) bool {
		seq := vectors.RandomSequence(xrand.New(seed), c.NumPIs(), 24)
		want := Run(c, fl, seq)

		inc := New(c, fl, Options{})
		prev := 0
		for _, cRaw := range cuts {
			cut := prev + int(cRaw%7)
			if cut > seq.Len() {
				cut = seq.Len()
			}
			inc.Extend(seq[prev:cut])
			prev = cut
		}
		inc.Extend(seq[prev:])
		got := inc.Result()
		for i := range fl {
			if got.Detected[i] != want.Detected[i] || got.DetTime[i] != want.DetTime[i] {
				return false
			}
		}
		return got.NumDetected == want.NumDetected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDetectionSubsetUnderConcatenation: appending vectors never loses a
// detection and never changes an established detection time.
func TestDetectionSubsetUnderConcatenation(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	rng := xrand.New(77)
	a := vectors.RandomSequence(rng, c.NumPIs(), 20)
	b := vectors.RandomSequence(rng, c.NumPIs(), 20)
	short := Run(c, fl, a)
	long := Run(c, fl, a.Concat(b))
	for i := range fl {
		if short.Detected[i] {
			if !long.Detected[i] {
				t.Fatalf("fault %d lost by extension", i)
			}
			if long.DetTime[i] != short.DetTime[i] {
				t.Fatalf("fault %d: det time moved %d -> %d", i, short.DetTime[i], long.DetTime[i])
			}
		}
	}
	if long.NumDetected < short.NumDetected {
		t.Fatal("extension reduced coverage")
	}
}

// TestEvaluateDivergenceNonNegative and consistency with Peek.
func TestEvaluateMatchesPeek(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	inc := New(c, fl, Options{})
	seq := vectors.RandomSequence(xrand.New(5), c.NumPIs(), 10)
	newlyA, div := inc.Evaluate(seq)
	newlyB := inc.Peek(seq)
	if len(newlyA) != len(newlyB) {
		t.Fatalf("Evaluate found %d, Peek %d", len(newlyA), len(newlyB))
	}
	if div < 0 {
		t.Fatalf("negative divergence %d", div)
	}
}

// TestActiveRegionPropertyRandomNetlists is the randomized differential
// property: on deterministic pseudo-random circuits of varying shape, the
// active-region engine must match the full-evaluation reference and the
// scalar Single simulator over the uncollapsed fault universe (stems,
// gate-pin branches, and D-pin branches) under X-heavy stimuli.
func TestActiveRegionPropertyRandomNetlists(t *testing.T) {
	shapes := []iscas.Spec{
		{Name: "rnd-a", PIs: 4, POs: 3, DFFs: 4, Gates: 40, Synthetic: true, Seed: 101},
		{Name: "rnd-b", PIs: 6, POs: 5, DFFs: 9, Gates: 90, Synthetic: true, Seed: 202},
		{Name: "rnd-c", PIs: 3, POs: 2, DFFs: 6, Gates: 55, Synthetic: true, Seed: 303},
	}
	for _, spec := range shapes {
		c, err := iscas.Synthesize(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		fl := faults.Universe(c)
		rng := xrand.New(spec.Seed)
		for trial := 0; trial < 3; trial++ {
			seq := xheavySequence(rng, c.NumPIs(), 12+rng.Intn(20))
			diffCheck(t, spec.Name, c, fl, seq, 1)

			// Cross-check a deterministic sample of faults against the
			// scalar two-machine simulator.
			active := Run(c, fl, seq)
			single := NewSingle(c)
			for i := trial; i < len(fl); i += 9 {
				det, at := single.Detects(fl[i], seq)
				if det != active.Detected[i] || (det && at != active.DetTime[i]) {
					t.Fatalf("%s trial %d fault %s: single (%v,%d) vs parallel (%v,%d)",
						spec.Name, trial, fl[i].Name(c), det, at, active.Detected[i], active.DetTime[i])
				}
			}
		}
	}
}
