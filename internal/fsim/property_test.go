package fsim

import (
	"testing"
	"testing/quick"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestChunkingInvariance: splitting a sequence across any series of
// Extend calls must produce identical detection results — machine state
// carries exactly.
func TestChunkingInvariance(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	f := func(seed uint64, cuts [4]uint8) bool {
		seq := vectors.RandomSequence(xrand.New(seed), c.NumPIs(), 24)
		want := Run(c, fl, seq)

		inc := NewIncremental(c, fl)
		prev := 0
		for _, cRaw := range cuts {
			cut := prev + int(cRaw%7)
			if cut > seq.Len() {
				cut = seq.Len()
			}
			inc.Extend(seq[prev:cut])
			prev = cut
		}
		inc.Extend(seq[prev:])
		got := inc.Result()
		for i := range fl {
			if got.Detected[i] != want.Detected[i] || got.DetTime[i] != want.DetTime[i] {
				return false
			}
		}
		return got.NumDetected == want.NumDetected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDetectionSubsetUnderConcatenation: appending vectors never loses a
// detection and never changes an established detection time.
func TestDetectionSubsetUnderConcatenation(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	rng := xrand.New(77)
	a := vectors.RandomSequence(rng, c.NumPIs(), 20)
	b := vectors.RandomSequence(rng, c.NumPIs(), 20)
	short := Run(c, fl, a)
	long := Run(c, fl, a.Concat(b))
	for i := range fl {
		if short.Detected[i] {
			if !long.Detected[i] {
				t.Fatalf("fault %d lost by extension", i)
			}
			if long.DetTime[i] != short.DetTime[i] {
				t.Fatalf("fault %d: det time moved %d -> %d", i, short.DetTime[i], long.DetTime[i])
			}
		}
	}
	if long.NumDetected < short.NumDetected {
		t.Fatal("extension reduced coverage")
	}
}

// TestEvaluateDivergenceNonNegative and consistency with Peek.
func TestEvaluateMatchesPeek(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	inc := NewIncremental(c, fl)
	seq := vectors.RandomSequence(xrand.New(5), c.NumPIs(), 10)
	newlyA, div := inc.Evaluate(seq)
	newlyB := inc.Peek(seq)
	if len(newlyA) != len(newlyB) {
		t.Fatalf("Evaluate found %d, Peek %d", len(newlyA), len(newlyB))
	}
	if div < 0 {
		t.Fatalf("negative divergence %d", div)
	}
}
