package fsim

import (
	"reflect"
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestParallelMatchesSerialRun is the differential check behind the
// sharded scheduler's contract: for random circuits, sequences, and
// worker counts, the cone-sharded Run must be bit-for-bit identical to
// the serial path — same Detected flags, same first-detection times.
func TestParallelMatchesSerialRun(t *testing.T) {
	circuits := []string{"s27", "s298", "s344", "s382"}
	workerCounts := []int{2, 3, 4, 8}
	for _, name := range circuits {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		for seed := uint64(1); seed <= 3; seed++ {
			seq := vectors.RandomSequence(xrand.New(seed), c.NumPIs(), 150)
			serial := New(c, fl, Options{Workers: 1}).Run(seq)
			for _, w := range workerCounts {
				par := New(c, fl, Options{Workers: w}).Run(seq)
				if !reflect.DeepEqual(serial.Detected, par.Detected) {
					t.Fatalf("%s seed=%d workers=%d: Detected differs from serial", name, seed, w)
				}
				if !reflect.DeepEqual(serial.DetTime, par.DetTime) {
					t.Fatalf("%s seed=%d workers=%d: DetTime differs from serial", name, seed, w)
				}
				if serial.NumDetected != par.NumDetected {
					t.Fatalf("%s seed=%d workers=%d: NumDetected %d != %d",
						name, seed, w, serial.NumDetected, par.NumDetected)
				}
			}
		}
	}
}

// TestParallelExtendOrderAndState interleaves Extend calls on a serial
// and a parallel Engine and checks that every call reports the same
// newly-detected faults in the same order, and that the carried machine
// state stays in lockstep (witnessed by identical detections afterwards).
func TestParallelExtendOrderAndState(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	seq := vectors.RandomSequence(xrand.New(7), c.NumPIs(), 120)

	serial := New(c, fl, Options{})
	par := New(c, fl, Options{Workers: 4})

	for start := 0; start < seq.Len(); start += 17 {
		end := start + 17
		if end > seq.Len() {
			end = seq.Len()
		}
		chunk := seq[start:end]
		ns := serial.Extend(chunk)
		np := par.Extend(chunk)
		if !reflect.DeepEqual(ns, np) {
			t.Fatalf("chunk [%d,%d): newly detected differ: serial %v, parallel %v",
				start, end, ns, np)
		}
		if serial.Now() != par.Now() {
			t.Fatalf("chunk [%d,%d): Now %d != %d", start, end, serial.Now(), par.Now())
		}
	}
	rs, rp := serial.Result(), par.Result()
	if !reflect.DeepEqual(rs, rp) {
		t.Fatal("final results differ after interleaved Extend calls")
	}
}

// TestParallelEvaluateMatchesSerial checks the non-committing Evaluate
// path: identical newly-detected lists (order included) and divergence
// counts, and no state leakage into subsequent calls.
func TestParallelEvaluateMatchesSerial(t *testing.T) {
	c := iscas.MustLoad("s344")
	fl := faults.CollapsedUniverse(c)
	warmup := vectors.RandomSequence(xrand.New(3), c.NumPIs(), 40)

	serial := New(c, fl, Options{})
	par := New(c, fl, Options{Workers: 4})
	serial.Extend(warmup)
	par.Extend(warmup)

	for seed := uint64(10); seed < 16; seed++ {
		cand := vectors.RandomSequence(xrand.New(seed), c.NumPIs(), 25)
		ns, ds := serial.Evaluate(cand)
		np, dp := par.Evaluate(cand)
		if !reflect.DeepEqual(ns, np) {
			t.Fatalf("seed=%d: newly differ: serial %v, parallel %v", seed, ns, np)
		}
		if ds != dp {
			t.Fatalf("seed=%d: divergence %d != %d", seed, ds, dp)
		}
	}
	if !reflect.DeepEqual(serial.Result(), par.Result()) {
		t.Fatal("Evaluate committed state: results diverged")
	}
}

// TestParallelismClamp checks the configuration edge cases: nonpositive
// worker counts normalize to the serial path.
func TestParallelismClamp(t *testing.T) {
	c := iscas.MustLoad("s27")
	fl := faults.CollapsedUniverse(c)
	if got := New(c, fl, Options{Workers: -3}).Options().Workers; got != 1 {
		t.Fatalf("normalized Workers for -3 = %d, want 1", got)
	}
	seq := vectors.RandomSequence(xrand.New(1), c.NumPIs(), 30)
	want := New(c, fl, Options{Workers: 1}).Run(seq)
	got := New(c, fl, Options{}).Run(seq)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("Run with zero-value Options differs from serial")
	}
}
