package fsim

// Fault-cone analysis and locality-aware fault packing.
//
// A stuck-at fault can only ever make a lane diverge from the fault-free
// machine inside the fanout cone of its injection site, closed through
// flip-flops to a fixpoint (an effect latched into state re-emerges at
// the flip-flop's Q next cycle and fans out again). Everything outside
// that closure provably carries the broadcast fault-free value in every
// lane at every time unit, so the simulation engine never needs to look
// there. This file computes the per-group union of those closures (the
// group's static active region) from the netlist CSR, and orders the
// fault list so that faults sharing cones land in the same 64-lane group,
// keeping each group's union region — and therefore its work — small.

import (
	"sort"

	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
)

// sigMask is a per-signal stem-forcing mask pair.
type sigMask struct {
	sig    netlist.SignalID
	m0, m1 uint64
}

// gatePinMask is a branch-forcing mask pair on one gate input pin.
type gatePinMask struct {
	gate, pin int32
	m0, m1    uint64
}

// dffMask is a branch-forcing mask pair on one flip-flop D pin.
type dffMask struct {
	dff    int32
	m0, m1 uint64
}

// site is one distinct fault-injection site of a group with the lanes it
// forces. A site is "activated" at a time unit when the fault-free value
// of its signal is not definitely equal to the stuck value — only then
// can the forcing perturb any lane.
type site struct {
	sig   netlist.SignalID
	stuck logic.Value
	lanes uint64
}

// plan is the static simulation plan of one fault group: the union active
// region (gates/flip-flops/primary outputs the group's faults can ever
// influence, in topological order) plus the sparse forcing lists that
// replace per-signal mask probes over the whole netlist.
type plan struct {
	gates []int32 // region gate indices, ascending (= topological) order
	dffs  []int32 // region flip-flop indices, ascending
	pos   []int32 // region primary-output positions, ascending

	// boundary lists the signals read by the region (gate inputs and
	// flip-flop D pins) but produced outside it; they always carry the
	// broadcast fault-free value. Dense-mode evaluation (engine.go)
	// materializes them once per time unit.
	boundary []int32

	sites []site // distinct injection sites, for the quiescence check

	stems     []sigMask          // stem forces, loaded into scratch per call
	stemPIs   []netlist.SignalID // stem-forced primary inputs
	stemQs    []int32            // flip-flops whose Q output carries a stem force
	seedGates []int32            // gates always queued: forced pin or forced output
	branches  []gatePinMask      // branch forces on gate input pins
	dffForce  []dffMask          // branch forces on flip-flop D pins
}

// planBuilder holds the reusable marking scratch for region construction.
// Marks are epoch-stamped so consecutive groups reuse the arrays without
// clearing.
type planBuilder struct {
	c   *netlist.Circuit
	csr *netlist.CSR

	sigMark  []int32
	gateMark []int32
	dffMark  []int32
	poMark   []int32
	bndMark  []int32
	epoch    int32

	queue []netlist.SignalID
}

func newPlanBuilder(c *netlist.Circuit) *planBuilder {
	return &planBuilder{
		c:        c,
		csr:      c.CSR(),
		sigMark:  make([]int32, c.NumSignals()),
		gateMark: make([]int32, c.NumGates()),
		dffMark:  make([]int32, c.NumDFFs()),
		poMark:   make([]int32, c.NumPOs()),
		bndMark:  make([]int32, c.NumSignals()),
	}
}

// addSignal marks a signal as region and queues it for fanout traversal.
func (pb *planBuilder) addSignal(s netlist.SignalID) {
	if pb.sigMark[s] != pb.epoch {
		pb.sigMark[s] = pb.epoch
		pb.queue = append(pb.queue, s)
	}
}

// build computes the plan for the faults in fl indexed by g.fault, with
// lane i of the masks corresponding to g.fault[i].
func (pb *planBuilder) build(fl []faults.Fault, faultIdx []int) plan {
	c, csr := pb.c, pb.csr
	pb.epoch++
	pb.queue = pb.queue[:0]
	var p plan

	// Sparse forcing lists, merged across lanes. Linear scans over the
	// per-group lists are fine: a group has at most 64 faults.
	addStem := func(sig netlist.SignalID, m0, m1 uint64) {
		for i := range p.stems {
			if p.stems[i].sig == sig {
				p.stems[i].m0 |= m0
				p.stems[i].m1 |= m1
				return
			}
		}
		p.stems = append(p.stems, sigMask{sig: sig, m0: m0, m1: m1})
	}
	addBranch := func(gate, pin int32, m0, m1 uint64) {
		for i := range p.branches {
			if p.branches[i].gate == gate && p.branches[i].pin == pin {
				p.branches[i].m0 |= m0
				p.branches[i].m1 |= m1
				return
			}
		}
		p.branches = append(p.branches, gatePinMask{gate: gate, pin: pin, m0: m0, m1: m1})
	}
	addDFFForce := func(dff int32, m0, m1 uint64) {
		for i := range p.dffForce {
			if p.dffForce[i].dff == dff {
				p.dffForce[i].m0 |= m0
				p.dffForce[i].m1 |= m1
				return
			}
		}
		p.dffForce = append(p.dffForce, dffMask{dff: dff, m0: m0, m1: m1})
	}
	addSite := func(sig netlist.SignalID, stuck logic.Value, lane uint64) {
		for i := range p.sites {
			if p.sites[i].sig == sig && p.sites[i].stuck == stuck {
				p.sites[i].lanes |= lane
				return
			}
		}
		p.sites = append(p.sites, site{sig: sig, stuck: stuck, lanes: lane})
	}

	for lane, fi := range faultIdx {
		f := fl[fi]
		laneMask := uint64(1) << uint(lane)
		var m0, m1 uint64
		if f.Stuck == logic.Zero {
			m0 = laneMask
		} else {
			m1 = laneMask
		}
		addSite(f.Signal, f.Stuck, laneMask)
		if f.IsStem() {
			addStem(f.Signal, m0, m1)
			pb.addSignal(f.Signal)
			continue
		}
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			addBranch(con.Index, con.Pin, m0, m1)
			if pb.gateMark[con.Index] != pb.epoch {
				pb.gateMark[con.Index] = pb.epoch
			}
			pb.addSignal(netlist.SignalID(csr.Out[con.Index]))
		case netlist.ConsumerDFF:
			addDFFForce(con.Index, m0, m1)
			if pb.dffMark[con.Index] != pb.epoch {
				pb.dffMark[con.Index] = pb.epoch
			}
			pb.addSignal(c.DFFs[con.Index].Q)
		}
	}

	// Classify the stem forces by source kind and queue the driver gates
	// of forced gate-output signals (they must always be evaluated so the
	// force applies even when their inputs are clean).
	for _, sm := range p.stems {
		if d := c.Driver(sm.sig); d >= 0 {
			if pb.gateMark[d] != pb.epoch {
				pb.gateMark[d] = pb.epoch
			}
		} else if fi := c.DFFOf(sm.sig); fi >= 0 {
			p.stemQs = append(p.stemQs, int32(fi))
		} else {
			p.stemPIs = append(p.stemPIs, sm.sig)
		}
	}

	// Close the region over combinational fanout and flip-flops.
	for len(pb.queue) > 0 {
		s := pb.queue[len(pb.queue)-1]
		pb.queue = pb.queue[:len(pb.queue)-1]
		fan := csr.GateFanout(s)
		for _, gi := range fan {
			if pb.gateMark[gi] != pb.epoch {
				pb.gateMark[gi] = pb.epoch
			}
			pb.addSignal(netlist.SignalID(csr.Out[gi]))
		}
		for _, di := range csr.DFFFanout(s) {
			if pb.dffMark[di] != pb.epoch {
				pb.dffMark[di] = pb.epoch
			}
			pb.addSignal(c.DFFs[di].Q)
		}
		for _, pi := range csr.POFanout(s) {
			pb.poMark[pi] = pb.epoch
		}
	}

	// Gather the region in ascending order (ascending gate index is
	// topological order because Circuit.Gates is topologically sorted).
	for gi := range pb.gateMark {
		if pb.gateMark[gi] == pb.epoch {
			p.gates = append(p.gates, int32(gi))
		}
	}
	for di := range pb.dffMark {
		if pb.dffMark[di] == pb.epoch {
			p.dffs = append(p.dffs, int32(di))
		}
	}
	for pi := range pb.poMark {
		if pb.poMark[pi] == pb.epoch {
			p.pos = append(p.pos, int32(pi))
		}
	}
	// Boundary: signals the region reads (gate inputs and flip-flop D
	// pins) that are not region signals themselves. A stem-forced signal
	// that is a primary input or flip-flop output is region-marked above,
	// so the two source lists never overlap the boundary.
	addBoundary := func(sig int32) {
		if pb.sigMark[sig] != pb.epoch && pb.bndMark[sig] != pb.epoch {
			pb.bndMark[sig] = pb.epoch
			p.boundary = append(p.boundary, sig)
		}
	}
	for _, gi := range p.gates {
		for _, in := range csr.GateIn(int(gi)) {
			addBoundary(in)
		}
	}
	for _, di := range p.dffs {
		addBoundary(int32(c.DFFs[di].D))
	}
	// Seed gates: forced-pin gates plus drivers of stem-forced outputs —
	// exactly the gates marked before the closure ran, deduplicated here
	// by re-deriving them from the forcing lists.
	seedSeen := make(map[int32]bool, len(p.branches)+len(p.stems))
	for _, b := range p.branches {
		if !seedSeen[b.gate] {
			seedSeen[b.gate] = true
			p.seedGates = append(p.seedGates, b.gate)
		}
	}
	for _, sm := range p.stems {
		if d := c.Driver(sm.sig); d >= 0 && !seedSeen[int32(d)] {
			seedSeen[int32(d)] = true
			p.seedGates = append(p.seedGates, int32(d))
		}
	}
	sort.Slice(p.seedGates, func(i, j int) bool { return p.seedGates[i] < p.seedGates[j] })
	return p
}

// packOrder returns a permutation of fault-list indices grouped by
// structural locality: faults are keyed by the topological position of
// the first gate their injection site can influence, so faults whose
// cones overlap land in the same 64-lane group and the group's union
// active region stays close to a single fault's cone. The sort is stable,
// so the order (and with it every detection-report order) is
// deterministic for a given circuit and fault list.
func packOrder(c *netlist.Circuit, fl []faults.Fault) []int {
	csr := c.CSR()
	numGates := c.NumGates()
	key := func(f faults.Fault) int {
		// First gate influenced by the forced signal; faults whose effect
		// enters a flip-flop before any gate sort after all gate keys,
		// bucketed by flip-flop.
		sig := f.Signal
		if !f.IsStem() {
			con := c.Consumers(f.Signal)[f.Consumer]
			switch con.Kind {
			case netlist.ConsumerGate:
				return int(con.Index)
			case netlist.ConsumerDFF:
				return numGates + int(con.Index)
			}
		}
		if d := c.Driver(sig); d >= 0 {
			return d
		}
		if fan := csr.GateFanout(sig); len(fan) > 0 {
			return int(fan[0])
		}
		if dfan := csr.DFFFanout(sig); len(dfan) > 0 {
			return numGates + int(dfan[0])
		}
		return numGates + c.NumDFFs() // observed only at a primary output
	}
	order := make([]int, len(fl))
	keys := make([]int, len(fl))
	for i, f := range fl {
		order[i] = i
		keys[i] = key(f)
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}
