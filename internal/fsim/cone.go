package fsim

// Fault-cone analysis and locality-aware fault packing.
//
// A stuck-at fault can only ever make a lane diverge from the fault-free
// machine inside the fanout cone of its injection site, closed through
// flip-flops to a fixpoint (an effect latched into state re-emerges at
// the flip-flop's Q next cycle and fans out again). Everything outside
// that closure provably carries the broadcast fault-free value in every
// lane at every time unit, so the simulation engine never needs to look
// there. This file computes the per-group union of those closures (the
// group's static active region) from the netlist CSR, and orders the
// fault list so that faults sharing cones land in the same group,
// keeping each group's union region — and therefore its work — small.
//
// Forcing masks are stored as nw-word vectors ([]uint64) so the same
// plan machinery serves both the 64-lane engine (nw = 1, masks read at
// index [0]) and the wide engines (Options.Lanes = 128/256, wide.go).
// All plan storage is carved from shared slabs owned by the builder:
// one Engine construction performs a handful of block allocations
// instead of hundreds of per-list appends. Plan slices must therefore
// never be appended to after build.

import (
	"sort"

	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
)

// slab is a bump allocator handing out exact-size slices carved from
// shared blocks. Carved slices are full-capacity-clamped so an
// accidental append cannot bleed into a neighbour.
type slab[T any] struct {
	buf []T
}

func (s *slab[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	if cap(s.buf)-len(s.buf) < n {
		size := 1 << 12
		for size < n {
			size <<= 1
		}
		s.buf = make([]T, 0, size)
	}
	off := len(s.buf)
	s.buf = s.buf[:off+n]
	return s.buf[off : off+n : off+n]
}

// sigMask is a per-signal stem-forcing mask pair (nw words per mask).
type sigMask struct {
	sig    netlist.SignalID
	m0, m1 []uint64
}

// gatePinMask is a branch-forcing mask pair on one gate input pin.
type gatePinMask struct {
	gate, pin int32
	m0, m1    []uint64
}

// dffMask is a branch-forcing mask pair on one flip-flop D pin.
type dffMask struct {
	dff    int32
	m0, m1 []uint64
}

// site is one distinct fault-injection site of a group with the lanes it
// forces. A site is "activated" at a time unit when the fault-free value
// of its signal is not definitely equal to the stuck value — only then
// can the forcing perturb any lane.
type site struct {
	sig   netlist.SignalID
	stuck logic.Value
	lanes []uint64
}

// plan is the static simulation plan of one fault group: the union active
// region (gates/flip-flops/primary outputs the group's faults can ever
// influence, in topological order) plus the sparse forcing lists that
// replace per-signal mask probes over the whole netlist.
type plan struct {
	gates []int32 // region gate indices, ascending (= topological) order
	dffs  []int32 // region flip-flop indices, ascending
	pos   []int32 // region primary-output positions, ascending

	// boundary lists the signals read by the region (gate inputs and
	// flip-flop D pins) but produced outside it; they always carry the
	// broadcast fault-free value. Dense-mode evaluation (engine.go)
	// materializes them once per time unit.
	boundary []int32

	sites []site // distinct injection sites, for the quiescence check

	stems     []sigMask          // stem forces, loaded into scratch per call
	stemPIs   []netlist.SignalID // stem-forced primary inputs
	stemQs    []int32            // flip-flops whose Q output carries a stem force
	seedGates []int32            // gates always queued: forced pin or forced output
	branches  []gatePinMask      // branch forces on gate input pins
	dffForce  []dffMask          // branch forces on flip-flop D pins
}

// planBuilder holds the reusable marking scratch, the per-group build
// buffers, and the slabs that back the finished plans. Marks are
// epoch-stamped so consecutive groups reuse the arrays without clearing;
// the temporary build lists are reset (not reallocated) per group and
// copied exact-size into slab storage by finalize.
type planBuilder struct {
	c   *netlist.Circuit
	csr *netlist.CSR
	nw  int // mask words per lane set (Options.Lanes / 64)

	sigMark  []int32
	gateMark []int32
	dffMark  []int32
	poMark   []int32
	bndMark  []int32
	seedMark []int32
	epoch    int32

	queue []netlist.SignalID

	// Per-group temporaries, reset per build.
	tGates, tDFFs, tPOs, tBoundary []int32
	tStemQs, tSeed                 []int32
	tStemPIs                       []netlist.SignalID
	tStems                         []sigMask
	tBranches                      []gatePinMask
	tDFFForce                      []dffMask
	tSites                         []site
	maskArena                      []uint64

	// Slabs backing the finished plans.
	i32Slab   slab[int32]
	sigSlab   slab[netlist.SignalID]
	maskSlab  slab[uint64]
	stemSlab  slab[sigMask]
	brSlab    slab[gatePinMask]
	dffSlab   slab[dffMask]
	siteSlab  slab[site]
	faultSlab slab[int]
	wordSlab  slab[logic.Word]
}

func newPlanBuilder(c *netlist.Circuit, nw int) *planBuilder {
	return &planBuilder{
		c:        c,
		csr:      c.CSR(),
		nw:       nw,
		sigMark:  make([]int32, c.NumSignals()),
		gateMark: make([]int32, c.NumGates()),
		dffMark:  make([]int32, c.NumDFFs()),
		poMark:   make([]int32, c.NumPOs()),
		bndMark:  make([]int32, c.NumSignals()),
		seedMark: make([]int32, c.NumGates()),
	}
}

// maskAlloc returns a zeroed nw-word mask from the per-group arena. The
// arena may reallocate as it grows; previously returned masks stay valid
// (they keep pointing into the old block), and finalize copies every
// mask into slab storage anyway.
func (pb *planBuilder) maskAlloc() []uint64 {
	off := len(pb.maskArena)
	need := off + pb.nw
	if need > cap(pb.maskArena) {
		grow := 2 * cap(pb.maskArena)
		if grow < need {
			grow = need
		}
		if grow < 256 {
			grow = 256
		}
		next := make([]uint64, off, grow)
		copy(next, pb.maskArena)
		pb.maskArena = next
	}
	pb.maskArena = pb.maskArena[:need]
	m := pb.maskArena[off:need:need]
	for i := range m {
		m[i] = 0
	}
	return m
}

func (pb *planBuilder) maskCopy(m []uint64) []uint64 {
	out := pb.maskSlab.alloc(pb.nw)
	copy(out, m)
	return out
}

// addSignal marks a signal as region and queues it for fanout traversal.
func (pb *planBuilder) addSignal(s netlist.SignalID) {
	if pb.sigMark[s] != pb.epoch {
		pb.sigMark[s] = pb.epoch
		pb.queue = append(pb.queue, s)
	}
}

// build computes the plan for the faults in fl indexed by faultIdx, with
// lane i of the masks corresponding to faultIdx[i] (word i/64, bit i%64).
// len(faultIdx) must not exceed 64*nw.
func (pb *planBuilder) build(fl []faults.Fault, faultIdx []int) plan {
	c, csr := pb.c, pb.csr
	pb.epoch++
	pb.queue = pb.queue[:0]
	pb.tGates, pb.tDFFs, pb.tPOs, pb.tBoundary = pb.tGates[:0], pb.tDFFs[:0], pb.tPOs[:0], pb.tBoundary[:0]
	pb.tStemQs, pb.tSeed = pb.tStemQs[:0], pb.tSeed[:0]
	pb.tStemPIs = pb.tStemPIs[:0]
	pb.tStems, pb.tBranches, pb.tDFFForce, pb.tSites = pb.tStems[:0], pb.tBranches[:0], pb.tDFFForce[:0], pb.tSites[:0]
	pb.maskArena = pb.maskArena[:0]

	// Sparse forcing lists, merged across lanes. Linear scans over the
	// per-group lists are fine: a group has at most 64*nw faults.
	addStem := func(sig netlist.SignalID, word int, m0, m1 uint64) {
		for i := range pb.tStems {
			if pb.tStems[i].sig == sig {
				pb.tStems[i].m0[word] |= m0
				pb.tStems[i].m1[word] |= m1
				return
			}
		}
		sm := sigMask{sig: sig, m0: pb.maskAlloc(), m1: pb.maskAlloc()}
		sm.m0[word], sm.m1[word] = m0, m1
		pb.tStems = append(pb.tStems, sm)
	}
	addBranch := func(gate, pin int32, word int, m0, m1 uint64) {
		for i := range pb.tBranches {
			if pb.tBranches[i].gate == gate && pb.tBranches[i].pin == pin {
				pb.tBranches[i].m0[word] |= m0
				pb.tBranches[i].m1[word] |= m1
				return
			}
		}
		b := gatePinMask{gate: gate, pin: pin, m0: pb.maskAlloc(), m1: pb.maskAlloc()}
		b.m0[word], b.m1[word] = m0, m1
		pb.tBranches = append(pb.tBranches, b)
	}
	addDFFForce := func(dff int32, word int, m0, m1 uint64) {
		for i := range pb.tDFFForce {
			if pb.tDFFForce[i].dff == dff {
				pb.tDFFForce[i].m0[word] |= m0
				pb.tDFFForce[i].m1[word] |= m1
				return
			}
		}
		df := dffMask{dff: dff, m0: pb.maskAlloc(), m1: pb.maskAlloc()}
		df.m0[word], df.m1[word] = m0, m1
		pb.tDFFForce = append(pb.tDFFForce, df)
	}
	addSite := func(sig netlist.SignalID, stuck logic.Value, word int, lane uint64) {
		for i := range pb.tSites {
			if pb.tSites[i].sig == sig && pb.tSites[i].stuck == stuck {
				pb.tSites[i].lanes[word] |= lane
				return
			}
		}
		s := site{sig: sig, stuck: stuck, lanes: pb.maskAlloc()}
		s.lanes[word] = lane
		pb.tSites = append(pb.tSites, s)
	}

	for lane, fi := range faultIdx {
		f := fl[fi]
		word := lane >> 6
		laneMask := uint64(1) << uint(lane&63)
		var m0, m1 uint64
		if f.Stuck == logic.Zero {
			m0 = laneMask
		} else {
			m1 = laneMask
		}
		addSite(f.Signal, f.Stuck, word, laneMask)
		if f.IsStem() {
			addStem(f.Signal, word, m0, m1)
			pb.addSignal(f.Signal)
			continue
		}
		con := c.Consumers(f.Signal)[f.Consumer]
		switch con.Kind {
		case netlist.ConsumerGate:
			addBranch(con.Index, con.Pin, word, m0, m1)
			if pb.gateMark[con.Index] != pb.epoch {
				pb.gateMark[con.Index] = pb.epoch
			}
			pb.addSignal(netlist.SignalID(csr.Out[con.Index]))
		case netlist.ConsumerDFF:
			addDFFForce(con.Index, word, m0, m1)
			if pb.dffMark[con.Index] != pb.epoch {
				pb.dffMark[con.Index] = pb.epoch
			}
			pb.addSignal(c.DFFs[con.Index].Q)
		}
	}

	// Classify the stem forces by source kind and queue the driver gates
	// of forced gate-output signals (they must always be evaluated so the
	// force applies even when their inputs are clean).
	for _, sm := range pb.tStems {
		if d := c.Driver(sm.sig); d >= 0 {
			if pb.gateMark[d] != pb.epoch {
				pb.gateMark[d] = pb.epoch
			}
		} else if fi := c.DFFOf(sm.sig); fi >= 0 {
			pb.tStemQs = append(pb.tStemQs, int32(fi))
		} else {
			pb.tStemPIs = append(pb.tStemPIs, sm.sig)
		}
	}

	// Close the region over combinational fanout and flip-flops.
	for len(pb.queue) > 0 {
		s := pb.queue[len(pb.queue)-1]
		pb.queue = pb.queue[:len(pb.queue)-1]
		fan := csr.GateFanout(s)
		for _, gi := range fan {
			if pb.gateMark[gi] != pb.epoch {
				pb.gateMark[gi] = pb.epoch
			}
			pb.addSignal(netlist.SignalID(csr.Out[gi]))
		}
		for _, di := range csr.DFFFanout(s) {
			if pb.dffMark[di] != pb.epoch {
				pb.dffMark[di] = pb.epoch
			}
			pb.addSignal(c.DFFs[di].Q)
		}
		for _, pi := range csr.POFanout(s) {
			pb.poMark[pi] = pb.epoch
		}
	}

	// Gather the region in ascending order (ascending gate index is
	// topological order because Circuit.Gates is topologically sorted).
	for gi := range pb.gateMark {
		if pb.gateMark[gi] == pb.epoch {
			pb.tGates = append(pb.tGates, int32(gi))
		}
	}
	for di := range pb.dffMark {
		if pb.dffMark[di] == pb.epoch {
			pb.tDFFs = append(pb.tDFFs, int32(di))
		}
	}
	for pi := range pb.poMark {
		if pb.poMark[pi] == pb.epoch {
			pb.tPOs = append(pb.tPOs, int32(pi))
		}
	}
	// Boundary: signals the region reads (gate inputs and flip-flop D
	// pins) that are not region signals themselves. A stem-forced signal
	// that is a primary input or flip-flop output is region-marked above,
	// so the two source lists never overlap the boundary.
	addBoundary := func(sig int32) {
		if pb.sigMark[sig] != pb.epoch && pb.bndMark[sig] != pb.epoch {
			pb.bndMark[sig] = pb.epoch
			pb.tBoundary = append(pb.tBoundary, sig)
		}
	}
	for _, gi := range pb.tGates {
		for _, in := range csr.GateIn(int(gi)) {
			addBoundary(in)
		}
	}
	for _, di := range pb.tDFFs {
		addBoundary(int32(c.DFFs[di].D))
	}
	// Seed gates: forced-pin gates plus drivers of stem-forced outputs —
	// exactly the gates marked before the closure ran, deduplicated by
	// re-deriving them from the forcing lists with an epoch-stamped mark.
	for _, b := range pb.tBranches {
		if pb.seedMark[b.gate] != pb.epoch {
			pb.seedMark[b.gate] = pb.epoch
			pb.tSeed = append(pb.tSeed, b.gate)
		}
	}
	for _, sm := range pb.tStems {
		if d := c.Driver(sm.sig); d >= 0 && pb.seedMark[d] != pb.epoch {
			pb.seedMark[d] = pb.epoch
			pb.tSeed = append(pb.tSeed, int32(d))
		}
	}
	sort.Slice(pb.tSeed, func(i, j int) bool { return pb.tSeed[i] < pb.tSeed[j] })
	return pb.finalize()
}

// finalize copies the temporary build lists into exact-size slab-backed
// slices. Mask slices are re-carved from the mask slab so each finished
// plan is self-contained and the arena can be reused by the next group.
func (pb *planBuilder) finalize() plan {
	var p plan
	p.gates = pb.carveI32(pb.tGates)
	p.dffs = pb.carveI32(pb.tDFFs)
	p.pos = pb.carveI32(pb.tPOs)
	p.boundary = pb.carveI32(pb.tBoundary)
	p.stemQs = pb.carveI32(pb.tStemQs)
	p.seedGates = pb.carveI32(pb.tSeed)
	if n := len(pb.tStemPIs); n > 0 {
		p.stemPIs = pb.sigSlab.alloc(n)
		copy(p.stemPIs, pb.tStemPIs)
	}
	if n := len(pb.tStems); n > 0 {
		p.stems = pb.stemSlab.alloc(n)
		for i, sm := range pb.tStems {
			p.stems[i] = sigMask{sig: sm.sig, m0: pb.maskCopy(sm.m0), m1: pb.maskCopy(sm.m1)}
		}
	}
	if n := len(pb.tBranches); n > 0 {
		p.branches = pb.brSlab.alloc(n)
		for i, b := range pb.tBranches {
			p.branches[i] = gatePinMask{gate: b.gate, pin: b.pin, m0: pb.maskCopy(b.m0), m1: pb.maskCopy(b.m1)}
		}
	}
	if n := len(pb.tDFFForce); n > 0 {
		p.dffForce = pb.dffSlab.alloc(n)
		for i, df := range pb.tDFFForce {
			p.dffForce[i] = dffMask{dff: df.dff, m0: pb.maskCopy(df.m0), m1: pb.maskCopy(df.m1)}
		}
	}
	if n := len(pb.tSites); n > 0 {
		p.sites = pb.siteSlab.alloc(n)
		for i, s := range pb.tSites {
			p.sites[i] = site{sig: s.sig, stuck: s.stuck, lanes: pb.maskCopy(s.lanes)}
		}
	}
	return p
}

func (pb *planBuilder) carveI32(src []int32) []int32 {
	if len(src) == 0 {
		return nil
	}
	out := pb.i32Slab.alloc(len(src))
	copy(out, src)
	return out
}

// packOrder returns a permutation of fault-list indices grouped by
// structural locality: faults are keyed by the topological position of
// the first gate their injection site can influence, so faults whose
// cones overlap land in the same group and the group's union active
// region stays close to a single fault's cone. The sort is stable, so
// the order (and with it every detection-report order) is deterministic
// for a given circuit and fault list.
func packOrder(c *netlist.Circuit, fl []faults.Fault) []int {
	csr := c.CSR()
	numGates := c.NumGates()
	key := func(f faults.Fault) int {
		// First gate influenced by the forced signal; faults whose effect
		// enters a flip-flop before any gate sort after all gate keys,
		// bucketed by flip-flop.
		sig := f.Signal
		if !f.IsStem() {
			con := c.Consumers(f.Signal)[f.Consumer]
			switch con.Kind {
			case netlist.ConsumerGate:
				return int(con.Index)
			case netlist.ConsumerDFF:
				return numGates + int(con.Index)
			}
		}
		if d := c.Driver(sig); d >= 0 {
			return d
		}
		if fan := csr.GateFanout(sig); len(fan) > 0 {
			return int(fan[0])
		}
		if dfan := csr.DFFFanout(sig); len(dfan) > 0 {
			return numGates + int(dfan[0])
		}
		return numGates + c.NumDFFs() // observed only at a primary output
	}
	order := make([]int, len(fl))
	keys := make([]int, len(fl))
	for i, f := range fl {
		order[i] = i
		keys[i] = key(f)
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}
