package fsim

// The flat full-netlist evaluation path, kept verbatim from the pre-cone
// engine: every gate of the circuit is evaluated for every group at
// every time unit, with dense per-group state words and per-signal
// forcing-mask probes. It serves two roles: the differential-testing
// reference (Options.FullEvaluation — the active-region engine must
// produce bit-for-bit identical results), and the escalation target the
// activity heuristic falls back to for persistently hot whole-netlist
// groups, where the cone restriction's bookkeeping costs more than it
// saves (fsim.go, noteActivity).

import (
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// stepGroupFull evaluates one time unit for group g over the entire
// netlist using sc's scratch words and the given dense flip-flop state
// words (updated in place), and returns the mask of lanes detected at a
// primary output this cycle. Forcing plans must already be loaded into
// sc. This is the pre-change engine, byte for byte except that the
// fault-free values arrive as a precomputed snapshot.
func (e *Engine) stepGroupFull(sc *scratch, g *group, vec vectors.Vector, goodVals []logic.Value, state []logic.Word) uint64 {
	c := e.c
	words := sc.words
	for i, pi := range c.PIs {
		w := logic.Broadcast(vec[i])
		if m0, m1 := sc.stem0[pi], sc.stem1[pi]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		words[pi] = w
	}
	for i, ff := range c.DFFs {
		w := state[i]
		if m0, m1 := sc.stem0[ff.Q], sc.stem1[ff.Q]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		words[ff.Q] = w
	}
	for gi := range c.Gates {
		gate := &c.Gates[gi]
		var v logic.Word
		if bf := sc.branchAt[gi]; len(bf) != 0 {
			v = evalForced(words, gate, bf)
		} else {
			v = words[gate.In[0]]
			switch gate.Type {
			case netlist.Buf:
			case netlist.Not:
				v = v.Not()
			case netlist.And:
				for _, in := range gate.In[1:] {
					v = v.And(words[in])
				}
			case netlist.Nand:
				for _, in := range gate.In[1:] {
					v = v.And(words[in])
				}
				v = v.Not()
			case netlist.Or:
				for _, in := range gate.In[1:] {
					v = v.Or(words[in])
				}
			case netlist.Nor:
				for _, in := range gate.In[1:] {
					v = v.Or(words[in])
				}
				v = v.Not()
			case netlist.Xor:
				for _, in := range gate.In[1:] {
					v = v.Xor(words[in])
				}
			case netlist.Xnor:
				for _, in := range gate.In[1:] {
					v = v.Xor(words[in])
				}
				v = v.Not()
			}
		}
		if m0, m1 := sc.stem0[gate.Out], sc.stem1[gate.Out]; m0|m1 != 0 {
			v = forceWord(v, m0, m1)
		}
		words[gate.Out] = v
	}
	sc.evaluated += int64(len(c.Gates))
	// Detection at primary outputs.
	var det uint64
	for _, po := range c.POs {
		switch goodVals[po] {
		case logic.Zero:
			det |= words[po].DefiniteOne()
		case logic.One:
			det |= words[po].DefiniteZero()
		}
	}
	// Capture next state.
	for i, ff := range c.DFFs {
		w := words[ff.D]
		if m0, m1 := sc.dff0[i], sc.dff1[i]; m0|m1 != 0 {
			w = forceWord(w, m0, m1)
		}
		state[i] = w
	}
	return det & g.alive
}

// evalForced evaluates a gate whose input pins carry branch-forced lanes
// over dense per-signal words (the full-path companion of
// evalForcedLazy).
func evalForced(words []logic.Word, gate *netlist.Gate, bf []pinForce) logic.Word {
	in := func(pin int) logic.Word {
		w := words[gate.In[pin]]
		for i := range bf {
			if int(bf[i].pin) == pin {
				w = forceWord(w, bf[i].m0, bf[i].m1)
			}
		}
		return w
	}
	v := in(0)
	switch gate.Type {
	case netlist.Buf:
	case netlist.Not:
		v = v.Not()
	case netlist.And, netlist.Nand:
		for p := 1; p < len(gate.In); p++ {
			v = v.And(in(p))
		}
		if gate.Type == netlist.Nand {
			v = v.Not()
		}
	case netlist.Or, netlist.Nor:
		for p := 1; p < len(gate.In); p++ {
			v = v.Or(in(p))
		}
		if gate.Type == netlist.Nor {
			v = v.Not()
		}
	case netlist.Xor, netlist.Xnor:
		for p := 1; p < len(gate.In); p++ {
			v = v.Xor(in(p))
		}
		if gate.Type == netlist.Xnor {
			v = v.Not()
		}
	}
	return v
}
