package fsim

import "sync/atomic"

// Process-wide simulation-efficiency counters, alongside patternsApplied
// (fsim.go). Like the pattern counter they are deliberately global: one
// process hosts one daemon, and threading metric sinks through every
// simulation call site would put bookkeeping on the hottest loop in the
// system. The engines accumulate locally (per call, per worker scratch)
// and flush once per call, so the atomics are off the inner loop; the
// same flush feeds the owning Engine's private counters (Engine.Stats).
var (
	// gatesEvaluated counts gates the parallel-fault engine actually
	// evaluated: the work remaining after cone restriction, activity
	// gating, and quiescence. A wide group (Options.Lanes > 64) counts one
	// evaluation per gate regardless of lane width.
	gatesEvaluated atomic.Int64
	// gatesSkipped counts gates a full-netlist sweep would have evaluated
	// but the active-region engine proved unnecessary (their value is the
	// broadcast fault-free value by construction).
	gatesSkipped atomic.Int64
	// groupsQuiescent counts (group, time unit) evaluations skipped
	// entirely by the quiescence check: no flip-flop diverged from the
	// fault-free machine and no fault site activated.
	groupsQuiescent atomic.Int64
	// groupsEscalated counts groups the activity heuristic escalated from
	// the active-region engine to the flat full-netlist stepper because
	// their region spans the netlist and stays hot (fsim.go,
	// noteActivity). Each escalation transition counts once.
	groupsEscalated atomic.Int64
	// wordsInert counts per-gate word evaluations the wide engines skipped
	// because every lane of the word slot was already dropped (dead-word
	// inerting, wide.go).
	wordsInert atomic.Int64
)

// SimStats is a snapshot of simulation-efficiency counters — the
// process-wide totals from the package-level Stats, or one engine's share
// from Engine.Stats. Ratios of GatesEvaluated to
// GatesEvaluated+GatesSkipped measure how much of the netlist the
// active-region engine actually touches; GroupsQuiescent counts whole
// group-time-unit evaluations skipped outright.
type SimStats struct {
	PatternsApplied int64 `json:"patterns_applied"`
	GatesEvaluated  int64 `json:"gates_evaluated"`
	GatesSkipped    int64 `json:"gates_skipped"`
	GroupsQuiescent int64 `json:"groups_quiescent"`
	GroupsEscalated int64 `json:"groups_escalated"`
	WordsInert      int64 `json:"words_inert"`
}

// Stats returns the cumulative simulation-efficiency counters for this
// process. It feeds the daemon's GET /metrics endpoint.
func Stats() SimStats {
	return SimStats{
		PatternsApplied: patternsApplied.Load(),
		GatesEvaluated:  gatesEvaluated.Load(),
		GatesSkipped:    gatesSkipped.Load(),
		GroupsQuiescent: groupsQuiescent.Load(),
		GroupsEscalated: groupsEscalated.Load(),
		WordsInert:      wordsInert.Load(),
	}
}

// GatesEvaluated returns the cumulative gate evaluations performed by the
// parallel-fault engine.
func GatesEvaluated() int64 { return gatesEvaluated.Load() }

// GatesSkipped returns the cumulative gate evaluations avoided by cone
// restriction, activity gating, and quiescence.
func GatesSkipped() int64 { return gatesSkipped.Load() }

// GroupsQuiescent returns the cumulative group-time-unit evaluations
// skipped by the quiescence check.
func GroupsQuiescent() int64 { return groupsQuiescent.Load() }

// GroupsEscalated returns the cumulative count of fault groups escalated
// to full-netlist evaluation by the activity heuristic.
func GroupsEscalated() int64 { return groupsEscalated.Load() }

// WordsInert returns the cumulative per-gate word evaluations skipped by
// the wide engines' dead-word inerting.
func WordsInert() int64 { return wordsInert.Load() }

// flushInto adds a scratch's locally accumulated counters to the
// process-wide gauges and the owning engine's private counters, then
// zeroes the local counts. The parallel scheduler calls it after its
// workers have joined, so the engine-side adds are single-threaded.
func (sc *scratch) flushInto(e *Engine) {
	if sc.evaluated != 0 {
		gatesEvaluated.Add(sc.evaluated)
		e.estat.GatesEvaluated += sc.evaluated
		sc.evaluated = 0
	}
	if sc.skipped != 0 {
		gatesSkipped.Add(sc.skipped)
		e.estat.GatesSkipped += sc.skipped
		sc.skipped = 0
	}
	if sc.quiescent != 0 {
		groupsQuiescent.Add(sc.quiescent)
		e.estat.GroupsQuiescent += sc.quiescent
		sc.quiescent = 0
	}
	if sc.escalated != 0 {
		groupsEscalated.Add(sc.escalated)
		e.estat.GroupsEscalated += sc.escalated
		sc.escalated = 0
	}
}

// flushInto is the wide-scratch counterpart of (*scratch).flushInto.
func (wsc *wscratch) flushInto(e *Engine) {
	if wsc.evaluated != 0 {
		gatesEvaluated.Add(wsc.evaluated)
		e.estat.GatesEvaluated += wsc.evaluated
		wsc.evaluated = 0
	}
	if wsc.skipped != 0 {
		gatesSkipped.Add(wsc.skipped)
		e.estat.GatesSkipped += wsc.skipped
		wsc.skipped = 0
	}
	if wsc.quiescent != 0 {
		groupsQuiescent.Add(wsc.quiescent)
		e.estat.GroupsQuiescent += wsc.quiescent
		wsc.quiescent = 0
	}
	if wsc.inert != 0 {
		wordsInert.Add(wsc.inert)
		e.estat.WordsInert += wsc.inert
		wsc.inert = 0
	}
}
