package fsim

import "sync/atomic"

// Process-wide simulation-efficiency counters, alongside patternsApplied
// (fsim.go). Like the pattern counter they are deliberately global: one
// process hosts one daemon, and threading metric sinks through every
// simulation call site would put bookkeeping on the hottest loop in the
// system. The engines accumulate locally (per call, per worker scratch)
// and flush once per call, so the atomics are off the inner loop.
var (
	// gatesEvaluated counts gates the parallel-fault engine actually
	// evaluated: the work remaining after cone restriction, activity
	// gating, and quiescence.
	gatesEvaluated atomic.Int64
	// gatesSkipped counts gates a full-netlist sweep would have evaluated
	// but the active-region engine proved unnecessary (their value is the
	// broadcast fault-free value by construction).
	gatesSkipped atomic.Int64
	// groupsQuiescent counts (group, time unit) evaluations skipped
	// entirely by the quiescence check: no flip-flop diverged from the
	// fault-free machine and no fault site activated.
	groupsQuiescent atomic.Int64
)

// SimStats is a snapshot of the process-wide simulation-efficiency
// counters. Ratios of GatesEvaluated to GatesEvaluated+GatesSkipped
// measure how much of the netlist the active-region engine actually
// touches; GroupsQuiescent counts whole group-time-unit evaluations
// skipped outright.
type SimStats struct {
	PatternsApplied int64 `json:"patterns_applied"`
	GatesEvaluated  int64 `json:"gates_evaluated"`
	GatesSkipped    int64 `json:"gates_skipped"`
	GroupsQuiescent int64 `json:"groups_quiescent"`
}

// Stats returns the cumulative simulation-efficiency counters for this
// process. It feeds the daemon's GET /metrics endpoint.
func Stats() SimStats {
	return SimStats{
		PatternsApplied: patternsApplied.Load(),
		GatesEvaluated:  gatesEvaluated.Load(),
		GatesSkipped:    gatesSkipped.Load(),
		GroupsQuiescent: groupsQuiescent.Load(),
	}
}

// GatesEvaluated returns the cumulative gate evaluations performed by the
// parallel-fault engine.
func GatesEvaluated() int64 { return gatesEvaluated.Load() }

// GatesSkipped returns the cumulative gate evaluations avoided by cone
// restriction, activity gating, and quiescence.
func GatesSkipped() int64 { return gatesSkipped.Load() }

// GroupsQuiescent returns the cumulative group-time-unit evaluations
// skipped by the quiescence check.
func GroupsQuiescent() int64 { return groupsQuiescent.Load() }

// flushStats adds a scratch's locally accumulated counters to the
// process-wide gauges and zeroes the local counts.
func (sc *scratch) flushStats() {
	if sc.evaluated != 0 {
		gatesEvaluated.Add(sc.evaluated)
		sc.evaluated = 0
	}
	if sc.skipped != 0 {
		gatesSkipped.Add(sc.skipped)
		sc.skipped = 0
	}
	if sc.quiescent != 0 {
		groupsQuiescent.Add(sc.quiescent)
		sc.quiescent = 0
	}
}
