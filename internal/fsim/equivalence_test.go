package fsim

import (
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestEquivalentFaultsDetectIdentically validates the equivalence
// collapsing semantically: structurally equivalent faults must have
// identical detection behaviour on every sequence (same detected flag and
// the same first detection time). This exercises the collapse rules and
// the injection machinery together.
func TestEquivalentFaultsDetectIdentically(t *testing.T) {
	c := iscas.S27()
	u := faults.Universe(c)
	res := faults.Collapse(c)

	// Group universe faults by class.
	classes := make(map[int][]faults.Fault)
	for i, f := range u {
		classes[res.ClassOf[i]] = append(classes[res.ClassOf[i]], f)
	}

	single := NewSingle(c)
	rng := xrand.New(2024)
	seqs := []vectors.Sequence{
		vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011"),
	}
	for i := 0; i < 6; i++ {
		seqs = append(seqs, vectors.RandomSequence(rng, c.NumPIs(), 6+rng.Intn(10)))
	}

	multi := 0
	for _, members := range classes {
		if len(members) < 2 {
			continue
		}
		multi++
		for _, seq := range seqs {
			d0, u0 := single.Detects(members[0], seq)
			for _, f := range members[1:] {
				d, at := single.Detects(f, seq)
				if d != d0 || (d && at != u0) {
					t.Fatalf("equivalent faults diverge on %v: %s (%v,%d) vs %s (%v,%d)",
						seq, members[0].Name(c), d0, u0, f.Name(c), d, at)
				}
			}
		}
	}
	if multi < 5 {
		t.Fatalf("only %d multi-member classes; collapsing suspiciously weak", multi)
	}
}

// TestEquivalentFaultsSynthetic repeats the check on a synthetic circuit
// with a sampled subset of classes.
func TestEquivalentFaultsSynthetic(t *testing.T) {
	c := iscas.MustLoad("s344")
	u := faults.Universe(c)
	res := faults.Collapse(c)
	classes := make(map[int][]faults.Fault)
	for i, f := range u {
		classes[res.ClassOf[i]] = append(classes[res.ClassOf[i]], f)
	}
	single := NewSingle(c)
	seq := vectors.RandomSequence(xrand.New(9), c.NumPIs(), 25)
	checked := 0
	for cls, members := range classes {
		if len(members) < 2 || cls%5 != 0 {
			continue
		}
		checked++
		d0, u0 := single.Detects(members[0], seq)
		for _, f := range members[1:] {
			d, at := single.Detects(f, seq)
			if d != d0 || (d && at != u0) {
				t.Fatalf("equivalent faults diverge: %s vs %s", members[0].Name(c), f.Name(c))
			}
		}
	}
	if checked == 0 {
		t.Skip("no classes sampled")
	}
}
