package fsim

// Deprecated shims over the old mutable Incremental API. They exist for
// one release so stacked changes can migrate call sites incrementally;
// new code should construct an Engine with New and an Options block
// (options.go), which fixes all configuration up front.

import (
	"seqbist/internal/faults"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// Incremental is the former name of Engine.
//
// Deprecated: use Engine, constructed by New with an Options block.
type Incremental = Engine

// NewIncremental prepares a serial 64-lane Engine.
//
// Deprecated: use New(c, fl, Options{}).
func NewIncremental(c *netlist.Circuit, fl []faults.Fault) *Incremental {
	return New(c, fl, Options{})
}

// RunParallel fault-simulates seq with the given worker count.
//
// Deprecated: use New(c, fl, Options{Workers: workers}).Run(seq).
func RunParallel(c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence, workers int) Result {
	return New(c, fl, Options{Workers: workers}).Run(seq)
}

// SetParallelism sets the number of worker goroutines used to shard fault
// groups (n <= 1 selects the serial path). Any value produces identical
// detection results. The cone shards are rebuilt on the next parallel
// call.
//
// Deprecated: set Options.Workers at construction.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
	e.opts.Workers = n
	e.shards = nil
	e.shardLive = 0
}

// Parallelism returns the configured worker count.
//
// Deprecated: use Options().Workers.
func (e *Engine) Parallelism() int { return e.workers }

// SetFullEvaluation switches the simulator to the full-netlist reference
// path (true) or the active-region engine (false, the default). The two
// paths represent machine state differently (dense versus sparse), so it
// must be called before any simulation; SetFullEvaluation panics if any
// time units have already been simulated, or if the engine was built with
// more than 64 lanes.
//
// Deprecated: set Options.FullEvaluation at construction.
func (e *Engine) SetFullEvaluation(full bool) {
	if e.now != 0 {
		panic("fsim: SetFullEvaluation after simulation started")
	}
	if full && e.nw != 1 {
		panic("fsim: full evaluation requires Lanes == 64")
	}
	e.fullEval = full
	e.opts.FullEvaluation = full
}
