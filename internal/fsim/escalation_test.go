package fsim

import (
	"reflect"
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/xrand"
)

// TestEscalationMatchesFull drives a feedback-heavy circuit with X-heavy
// stimuli — the workload whose whole-netlist regions stay hot enough to
// trip the escalation heuristic — through interleaved Extend/Evaluate
// calls, and requires (a) bit-for-bit identity with the full-evaluation
// reference across the escalate/de-escalate transitions, and (b) that
// escalation actually fired, so the dense<->sparse state conversions were
// really exercised.
func TestEscalationMatchesFull(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	rng := xrand.New(17)
	seq := xheavySequence(rng, c.NumPIs(), 120)

	active := New(c, fl, Options{})
	full := New(c, fl, Options{FullEvaluation: true})
	chunk := 9
	for start := 0; start < seq.Len(); start += chunk {
		end := start + chunk
		if end > seq.Len() {
			end = seq.Len()
		}
		part := seq[start:end]
		na, da := active.Evaluate(part)
		nf, df := full.Evaluate(part)
		if !reflect.DeepEqual(na, nf) || da != df {
			t.Fatalf("[%d,%d): Evaluate differs: (%v,%d) vs (%v,%d)", start, end, na, da, nf, df)
		}
		if na = active.Extend(part); !reflect.DeepEqual(na, full.Extend(part)) {
			t.Fatalf("[%d,%d): Extend newly differ", start, end)
		}
	}
	if !reflect.DeepEqual(active.Result(), full.Result()) {
		t.Fatal("final results differ")
	}
	if active.Stats().GroupsEscalated == 0 {
		t.Fatal("escalation heuristic never fired on an X-heavy feedback workload")
	}
}

// TestEscalationSharded repeats the escalation differential under the
// cone-sharded scheduler: per-group escalation state is owned by exactly
// one worker per call, and results must stay identical.
func TestEscalationSharded(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	rng := xrand.New(23)
	seq := xheavySequence(rng, c.NumPIs(), 90)
	want := New(c, fl, Options{FullEvaluation: true})
	wref := want.Run(seq)
	for _, w := range []int{2, 4} {
		e := New(c, fl, Options{Workers: w})
		if got := e.Run(seq); !reflect.DeepEqual(got, wref) {
			t.Fatalf("workers=%d: escalated run differs from full reference", w)
		}
	}
}

// TestEscalationStatsCounter pins the process-wide counter: an escalating
// run must advance GroupsEscalated.
func TestEscalationStatsCounter(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	seq := xheavySequence(xrand.New(29), c.NumPIs(), 120)
	before := Stats()
	e := New(c, fl, Options{})
	chunk := 9
	for start := 0; start < seq.Len(); start += chunk {
		end := start + chunk
		if end > seq.Len() {
			end = seq.Len()
		}
		e.Extend(seq[start:end])
	}
	if e.Stats().GroupsEscalated == 0 {
		t.Skip("workload did not escalate; counter not exercised")
	}
	if got := Stats().GroupsEscalated - before.GroupsEscalated; got < e.Stats().GroupsEscalated {
		t.Errorf("process-wide GroupsEscalated advanced by %d, engine recorded %d", got, e.Stats().GroupsEscalated)
	}
}
