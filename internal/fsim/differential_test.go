package fsim

import (
	"reflect"
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// These tests are the active-region engine's contract: against every
// registry circuit and against random synthetic netlists, the
// cone-restricted adaptive engine (engine.go) must be bit-for-bit
// identical to the pre-change full-netlist evaluation path kept behind
// the SetFullEvaluation hook (fullpath.go) — same newly-detected lists in
// the same order, same divergence counts, same Detected/DetTime/
// NumDetected, under committing (Extend) and non-committing (Evaluate)
// use, with binary and X-heavy stimuli, at every worker count.

// xheavySequence builds a sequence whose values are 0/1/X with equal
// probability: unknowns exercise the pessimistic three-valued paths the
// quiescence and activation checks must treat conservatively.
func xheavySequence(rng *xrand.RNG, width, n int) vectors.Sequence {
	seq := make(vectors.Sequence, n)
	for i := range seq {
		v := make(vectors.Vector, width)
		for k := range v {
			switch rng.Intn(3) {
			case 0:
				v[k] = logic.Zero
			case 1:
				v[k] = logic.One
			default:
				v[k] = logic.X
			}
		}
		seq[i] = v
	}
	return seq
}

// diffCheck interleaves Extend and Evaluate calls over chunks of seq on
// an active-region and a full-evaluation simulator and fails on the first
// observable difference.
func diffCheck(t *testing.T, name string, c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence, workers int) {
	t.Helper()
	diffCheckOpts(t, name, c, fl, seq, Options{Workers: workers})
}

// diffCheckOpts is diffCheck with a full Options block for the engine
// under test: lane width, forced propagation mode, and worker count all
// must reproduce the 64-lane full-evaluation reference bit for bit.
func diffCheckOpts(t *testing.T, name string, c *netlist.Circuit, fl []faults.Fault, seq vectors.Sequence, opts Options) {
	t.Helper()
	active := New(c, fl, opts)
	full := New(c, fl, Options{Workers: opts.Workers, FullEvaluation: true})
	workers := opts.Workers

	chunk := 7
	for start := 0; start < seq.Len(); start += chunk {
		end := start + chunk
		if end > seq.Len() {
			end = seq.Len()
		}
		part := seq[start:end]
		// Non-committing pass first: must not disturb the machines.
		na, da := active.Evaluate(part)
		nf, df := full.Evaluate(part)
		if !reflect.DeepEqual(na, nf) {
			t.Fatalf("%s workers=%d [%d,%d): Evaluate newly differ: active %v, full %v",
				name, workers, start, end, na, nf)
		}
		if da != df {
			t.Fatalf("%s workers=%d [%d,%d): divergence %d != %d", name, workers, start, end, da, df)
		}
		// Committing pass.
		na = active.Extend(part)
		nf = full.Extend(part)
		if !reflect.DeepEqual(na, nf) {
			t.Fatalf("%s workers=%d [%d,%d): Extend newly differ: active %v, full %v",
				name, workers, start, end, na, nf)
		}
	}
	ra, rf := active.Result(), full.Result()
	if !reflect.DeepEqual(ra, rf) {
		t.Fatalf("%s workers=%d: final results differ", name, workers)
	}
}

// TestActiveRegionMatchesFullRegistry runs the differential check over
// every circuit in the registry, with binary and X-heavy stimuli.
func TestActiveRegionMatchesFullRegistry(t *testing.T) {
	for _, name := range iscas.Names() {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		// Scale sequence length down for the big circuits so the full
		// reference path keeps the test fast.
		n := 60
		if c.NumGates() > 1000 {
			n = 24
		}
		if testing.Short() && c.NumGates() > 1000 {
			continue
		}
		rng := xrand.New(uint64(len(name)) * 7919)
		diffCheck(t, name, c, fl, vectors.RandomSequence(rng, c.NumPIs(), n), 1)
		diffCheck(t, name+"/xheavy", c, fl, xheavySequence(rng, c.NumPIs(), n), 1)
	}
}

// TestActiveRegionMatchesFullSharded repeats the check under the sharded
// scheduler: the active engine must stay identical to the full path at
// every worker count.
func TestActiveRegionMatchesFullSharded(t *testing.T) {
	for _, name := range []string{"s298", "s1423"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		rng := xrand.New(4242)
		seq := vectors.RandomSequence(rng, c.NumPIs(), 60)
		for _, w := range []int{2, 4} {
			diffCheck(t, name, c, fl, seq, w)
		}
	}
}

// TestActiveRegionUncollapsedUniverse exercises every fault-site kind —
// stems, gate-pin branches, and flip-flop D-pin branches — by running the
// differential check over the uncollapsed universe of a circuit built to
// contain them all.
func TestActiveRegionUncollapsedUniverse(t *testing.T) {
	src := `INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
q0 = DFF(n1)
q1 = DFF(n2)
n1 = NAND(a, q1)
n2 = NOR(b, n1)
y = AND(n1, q0, n2)
z = XOR(n1, q1)
`
	c := mustParse(t, src)
	fl := faults.Universe(c)
	kinds := map[netlist.ConsumerKind]int{}
	stems := 0
	for _, f := range fl {
		if f.IsStem() {
			stems++
			continue
		}
		kinds[c.Consumers(f.Signal)[f.Consumer].Kind]++
	}
	if stems == 0 || kinds[netlist.ConsumerGate] == 0 || kinds[netlist.ConsumerDFF] == 0 {
		t.Fatalf("fault universe misses a site kind: stems=%d gate-branches=%d dff-branches=%d",
			stems, kinds[netlist.ConsumerGate], kinds[netlist.ConsumerDFF])
	}
	rng := xrand.New(99)
	diffCheck(t, "kinds", c, fl, vectors.RandomSequence(rng, c.NumPIs(), 40), 1)
	diffCheck(t, "kinds/xheavy", c, fl, xheavySequence(rng, c.NumPIs(), 40), 1)
}

// TestQuiescenceCounters checks the efficiency gauges: a group whose only
// fault is never activated (stuck value equal to the constant fault-free
// site value) must be skipped by the quiescence check, and the skip must
// show up in the process-wide counters with unchanged results.
func TestQuiescenceCounters(t *testing.T) {
	// y = OR(a, na) is constant 1, so "y stuck-at-1" is never activated.
	c := mustParse(t, `INPUT(a)
OUTPUT(y)
na = NOT(a)
y = OR(a, na)
`)
	y, _ := c.SignalByName("y")
	f := faults.Fault{Signal: y, Consumer: faults.StemConsumer, Stuck: logic.One}
	seq := vectors.MustParseSequence("0 1 0 1 0 1")
	before := Stats()
	res := Run(c, []faults.Fault{f}, seq)
	after := Stats()
	if res.Detected[0] {
		t.Fatal("inactive fault reported detected")
	}
	if got := after.GroupsQuiescent - before.GroupsQuiescent; got < int64(seq.Len()) {
		t.Errorf("GroupsQuiescent advanced by %d, want >= %d", got, seq.Len())
	}
	if after.GatesSkipped <= before.GatesSkipped {
		t.Error("GatesSkipped did not advance across a quiescent run")
	}
}

// TestSimStatsAccounting checks that evaluated+skipped account for whole
// netlists: for any non-quiescent simulation the two gauges sum to a
// multiple of the gate count per (group, time unit).
func TestSimStatsAccounting(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	seq := vectors.RandomSequence(xrand.New(5), c.NumPIs(), 30)
	before := Stats()
	New(c, fl, Options{Workers: 1}).Run(seq)
	after := Stats()
	total := (after.GatesEvaluated - before.GatesEvaluated) + (after.GatesSkipped - before.GatesSkipped)
	if total <= 0 || total%int64(c.NumGates()) != 0 {
		t.Errorf("evaluated+skipped = %d, want a positive multiple of %d", total, c.NumGates())
	}
	if after.GatesEvaluated == before.GatesEvaluated {
		t.Error("no gates recorded as evaluated")
	}
}

// TestEvaluateSteadyStateAllocationFree locks in the pooled ATPG inner
// loop: once warmed up, Evaluate of a candidate that detects nothing must
// not allocate.
func TestEvaluateSteadyStateAllocationFree(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	inc := New(c, fl, Options{})
	warm := vectors.RandomSequence(xrand.New(8), c.NumPIs(), 60)
	inc.Extend(warm)
	cand := vectors.RandomSequence(xrand.New(9), c.NumPIs(), 16)
	inc.Evaluate(cand) // warm the pools (trace arena, scratch growth)
	if newly, _ := inc.Evaluate(cand); len(newly) != 0 {
		t.Skip("candidate unexpectedly detects faults; pick a different seed")
	}
	allocs := testing.AllocsPerRun(20, func() {
		inc.Evaluate(cand)
	})
	if allocs > 0 {
		t.Errorf("Evaluate allocated %.1f times per call in steady state, want 0", allocs)
	}
}
