package fsim

// The Engine options surface. One constructor, one options block: every
// knob the simulator exposes — worker count, lane width, propagation
// mode, and the full-evaluation reference path — is fixed at
// construction, so an Engine's behavior never changes under a caller's
// feet and its methods are safe to call repeatedly in any order.

import (
	"fmt"

	"seqbist/internal/faults"
	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/sim"
	"seqbist/internal/vectors"
)

// Mode selects the propagation structure of the active-region engine.
type Mode int

const (
	// ModeAuto picks per group and per time unit between event-driven
	// (queue) and dense-region propagation from recent activity, and
	// escalates persistently hot whole-netlist groups to the flat full
	// stepper. The default, and the only mode production code should use.
	ModeAuto Mode = iota
	// ModeQueue forces event-driven level-ordered propagation.
	ModeQueue
	// ModeDense forces dense region walks.
	ModeDense
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeQueue:
		return "queue"
	case ModeDense:
		return "dense"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures an Engine. The zero value is the default
// configuration: serial, 64 lanes, adaptive propagation.
type Options struct {
	// Workers is the goroutine count for the cone-sharded group
	// scheduler; 0 or 1 selects the serial path. Any value produces
	// bit-for-bit identical detection results.
	Workers int

	// Lanes is the number of faulty machines packed per group: 64 (the
	// default when 0) simulates one machine per bit of a uint64 word;
	// 128/256 pack multiple words per group, amortizing region-walk and
	// queue overhead per evaluated gate at the cost of wider value
	// operations. Must be a positive multiple of 64. Results are
	// bit-for-bit identical at every lane width.
	Lanes int

	// Mode selects the propagation structure; see Mode. ModeQueue and
	// ModeDense exist for differential testing and diagnosis.
	Mode Mode

	// FullEvaluation selects the flat full-netlist reference path
	// (fullpath.go) instead of the active-region engine: every gate, every
	// group, every time unit. It is the differential-testing reference and
	// requires Lanes == 64.
	FullEvaluation bool
}

// ValidLanes reports whether n is an acceptable Options.Lanes value
// (0 selects the default width). Layers that accept a lane width from
// external input use it to reject bad values as errors before they reach
// New, which panics.
func ValidLanes(n int) bool {
	return n == 0 || (n >= 64 && n%64 == 0)
}

// normalize validates opts and fills defaults. It panics on option
// combinations that have no meaning — misconfiguration is a programming
// error, not a runtime condition.
func (o Options) normalize() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Lanes == 0 {
		o.Lanes = 64
	}
	if o.Lanes < 64 || o.Lanes%64 != 0 {
		panic(fmt.Sprintf("fsim: Options.Lanes must be a positive multiple of 64, got %d", o.Lanes))
	}
	if o.Mode != ModeAuto && o.Mode != ModeQueue && o.Mode != ModeDense {
		panic(fmt.Sprintf("fsim: unknown Options.Mode %d", int(o.Mode)))
	}
	if o.FullEvaluation && o.Lanes != 64 {
		panic("fsim: Options.FullEvaluation requires Lanes == 64")
	}
	return o
}

// New prepares an Engine for the given circuit and fault list. The
// initial state of every machine is all-unknown. Faults are packed into
// lane groups in locality order (packOrder), and each group's static
// active region is precomputed, so construction does the cone analysis
// once and every Run/Extend/Evaluate call benefits.
func New(c *netlist.Circuit, fl []faults.Fault, opts Options) *Engine {
	opts = opts.normalize()
	e := &Engine{
		c:         c,
		csr:       c.CSR(),
		fl:        fl,
		opts:      opts,
		nw:        opts.Lanes / 64,
		good:      sim.New(c),
		goodPO:    make([]logic.Value, c.NumPOs()),
		peekSim:   sim.New(c),
		peekPO:    make([]logic.Value, c.NumPOs()),
		workers:   opts.Workers,
		fullEval:  opts.FullEvaluation,
		detected:  make([]bool, len(fl)),
		detTime:   make([]int, len(fl)),
		entryGood: make([]logic.Value, c.NumDFFs()),
	}
	e.goodState = e.good.InitialState()
	e.peekState = make([]logic.Value, c.NumDFFs())
	e.stride = earlyExitStride(c)
	for i := range e.detTime {
		e.detTime[i] = Undetected
	}
	if e.nw == 1 {
		e.sc = newScratch(c)
	} else {
		e.wsc = newWScratch(c, e.nw)
	}
	e.buildGroups()
	return e
}

// Options returns the engine's (normalized) configuration.
func (e *Engine) Options() Options { return e.opts }

// Run simulates seq from the all-unknown initial state and returns the
// per-fault detection results. Any state carried from earlier calls is
// reset first, so Run is safe to call repeatedly — each call is an
// independent whole-sequence simulation reusing the engine's plans and
// buffers. Extension is chunked with an early exit: once every fault is
// detected the rest of the sequence cannot change the Result (see
// earlyExitStride).
func (e *Engine) Run(seq vectors.Sequence) Result {
	e.Reset()
	chunk := e.stride
	for start := 0; start < len(seq); start += chunk {
		if e.numDet == len(e.fl) {
			break
		}
		end := start + chunk
		if end > len(seq) {
			end = len(seq)
		}
		e.Extend(seq[start:end])
	}
	return e.Result()
}

// Reset returns the engine to its initial state: all machines all-unknown,
// no faults detected, time zero. Plans, shards, and pooled buffers are
// retained. The cumulative Stats are not reset.
func (e *Engine) Reset() {
	for i := range e.goodState {
		e.goodState[i] = logic.X
	}
	for i := range e.detected {
		e.detected[i] = false
		e.detTime[i] = Undetected
	}
	e.numDet = 0
	e.now = 0
	for gi := range e.groups {
		g := &e.groups[gi]
		g.alive = fullAlive64(len(g.fault))
		for i := range g.state {
			g.state[i] = logic.AllX()
		}
		g.divDFF = g.divDFF[:0]
		g.lastEval = 0
		g.hotCalls = 0
		g.escalated = false
	}
	for gi := range e.wgroups {
		e.wgroups[gi].reset()
	}
	// Detection dropped groups from the shards' balance; force a rebuild.
	e.shards = nil
	e.shardLive = 0
}

// fullAlive64 returns the live mask for n lanes in one word (n <= 64).
func fullAlive64(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Single simulates fault f alone against seq from the all-unknown state
// using the pooled scalar two-machine simulator, returning whether (and
// when) it is detected. It is independent of the engine's carried
// parallel-machine state.
func (e *Engine) Single(f faults.Fault, seq vectors.Sequence) (detected bool, at int) {
	if e.singleSim == nil {
		e.singleSim = NewSingle(e.c)
	}
	return e.singleSim.Detects(f, seq)
}

// Stats returns the cumulative simulation-efficiency counters accumulated
// by this engine (across Reset calls). The process-wide aggregate over
// all engines is the package-level Stats.
func (e *Engine) Stats() SimStats { return e.estat }
