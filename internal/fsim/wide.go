package fsim

// The wide-lane engines: multi-word fault packing (Options.Lanes = 128,
// 256, ...). A wide group packs 64*nw faulty machines, one per bit of an
// nw-word vector, so every region walk, quiescence probe, and level-queue
// operation is amortized over nw times as many faults as the 64-lane
// engine (fewer groups, fewer plans, fewer seed/capture sweeps per
// pattern). The flip side is nw-fold wider value operations, so wider is
// not automatically faster — the benchmarks record the trade.
//
// The wide path mirrors engine.go structurally: the same quiescence
// check, the same queue/dense mode split driven by lastEval, the same
// sparse diverged-flip-flop state. Per-signal values live in flat
// word-major arrays ([signal*nw + w]); a signal counts as diverged when
// any live word differs from the broadcast fault-free value, and an
// activated signal stores all its live words so readers never need
// per-word divergence tracking.
//
// Dead lanes are inerted exactly like the 64-lane engine (forcing masks
// filtered by the live mask at plan load, stale divergence pinned at
// seed). On top of that, dead *words* — word slots whose 64 lanes have
// all been dropped — are skipped wholesale: every per-word loop iterates
// the group's liveWords list instead of [0, nw), so a wide group whose
// faults die off converges to the cost of a narrower one. The skipped
// word-evaluations are counted in the WordsInert stat.
//
// Detection lanes are numbered word-major (lane = word*64 + bit), which
// is the fault's position in the group's pack order — so the canonical
// (time, group, lane) detection order, and with it every Result, is
// bit-for-bit identical at every lane width. The differential tests pin
// this against the 64-lane and full-evaluation paths.

import (
	"math"

	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// wgroup is one batch of up to 64*nw faults simulated bit-parallel.
type wgroup struct {
	fault []int    // indices into the fault list, one per lane (word-major)
	alive []uint64 // live-lane mask, nw words

	// liveWords lists the word slots with at least one live lane,
	// ascending; every per-word loop in the wide engine iterates this.
	liveWords []int32

	plan plan

	// Machine state, sparse: state[di*nw+w] is meaningful only for the
	// flip-flop indices listed in divDFF; every other flip-flop is
	// implicitly at the fault-free value.
	state  []logic.Word
	divDFF []int32

	// lastEval is the gate count the previous time unit evaluated — the
	// activity predictor shared with the 64-lane engine.
	lastEval int32
}

// newWGroup builds a wide group over faultIdx (n faults) with plan p,
// drawing mask and state storage from the builder's slabs.
func newWGroup(pb *planBuilder, faultIdx []int, p plan, n, numDFFs int) wgroup {
	nw := pb.nw
	g := wgroup{
		fault:     faultIdx,
		alive:     pb.maskSlab.alloc(nw),
		liveWords: pb.i32Slab.alloc(nw)[:0],
		plan:      p,
		state:     pb.wordSlab.alloc(numDFFs * nw),
	}
	for lane := 0; lane < n; lane++ {
		g.alive[lane>>6] |= 1 << uint(lane&63)
	}
	g.recomputeLive()
	return g
}

// recomputeLive rebuilds the live-word list from the live-lane mask.
func (g *wgroup) recomputeLive() {
	g.liveWords = g.liveWords[:0]
	for w, m := range g.alive {
		if m != 0 {
			g.liveWords = append(g.liveWords, int32(w))
		}
	}
}

// dropLane marks one detected lane dead, retiring its word slot when the
// last lane in it dies.
func (g *wgroup) dropLane(lane int) {
	w := lane >> 6
	g.alive[w] &^= 1 << uint(lane&63)
	if g.alive[w] == 0 {
		g.recomputeLive()
	}
}

// anyAlive reports whether the group still carries undetected faults.
func (g *wgroup) anyAlive() bool { return len(g.liveWords) > 0 }

// reset restores the group to its initial state (all lanes live, machine
// state all-unknown).
func (g *wgroup) reset() {
	for w := range g.alive {
		g.alive[w] = 0
	}
	for lane := 0; lane < len(g.fault); lane++ {
		g.alive[lane>>6] |= 1 << uint(lane&63)
	}
	g.recomputeLive()
	g.divDFF = g.divDFF[:0]
	g.lastEval = 0
}

// wpinForce is a branch force on one gate input pin with per-word masks
// (the wide counterpart of pinForce). Masks point into the scratch's
// per-load arena.
type wpinForce struct {
	pin    int32
	m0, m1 []uint64
}

// wscratch is the wide engine's per-worker scratch: flat word-major
// forcing and value arrays plus the propagation state of engine.go's
// scratch.
type wscratch struct {
	nw           int
	stem0, stem1 []uint64      // [signal*nw + w]
	branchAt     [][]wpinForce // per gate
	dff0, dff1   []uint64      // [dff*nw + w]
	words        []logic.Word  // [signal*nw + w] (valid only when stamped)
	state        []logic.Word  // [dff*nw + w] for non-committing passes
	divDFF       []int32

	bmask []uint64 // per-load arena backing the branchAt masks

	epoch     int32
	sigEpoch  []int32
	gateEpoch []int32
	buckets   [][]int32
	maxLev    int32
	newDiv    []int32

	dets   []detection
	det    []uint64     // per-unit detection masks, nw words
	detAll []uint64     // per-group-call cumulative detection masks
	vbuf   []logic.Word // per-gate/per-dff word staging buffer

	evaluated int64
	skipped   int64
	quiescent int64
	inert     int64
}

func newWScratch(c *netlist.Circuit, nw int) *wscratch {
	return &wscratch{
		nw:        nw,
		stem0:     make([]uint64, c.NumSignals()*nw),
		stem1:     make([]uint64, c.NumSignals()*nw),
		branchAt:  make([][]wpinForce, c.NumGates()),
		dff0:      make([]uint64, c.NumDFFs()*nw),
		dff1:      make([]uint64, c.NumDFFs()*nw),
		words:     make([]logic.Word, c.NumSignals()*nw),
		state:     make([]logic.Word, c.NumDFFs()*nw),
		sigEpoch:  make([]int32, c.NumSignals()),
		gateEpoch: make([]int32, c.NumGates()),
		buckets:   levelBuckets(c.CSR()),
		det:       make([]uint64, nw),
		detAll:    make([]uint64, nw),
		vbuf:      make([]logic.Word, nw),
	}
}

// loadPlanW populates the scratch's forcing arrays for g, filtering every
// mask word by the group's live mask (dead lanes must not force — that is
// what lets drained groups reach quiescence). Branch masks are carved
// from the per-load arena; the arena stabilizes after the first load, so
// the steady state allocates nothing.
func (e *Engine) loadPlanW(wsc *wscratch, g *wgroup) {
	nw := wsc.nw
	alive := g.alive
	for _, sm := range g.plan.stems {
		off := int(sm.sig) * nw
		for w := 0; w < nw; w++ {
			wsc.stem0[off+w] = sm.m0[w] & alive[w]
			wsc.stem1[off+w] = sm.m1[w] & alive[w]
		}
	}
	wsc.bmask = wsc.bmask[:0]
	for _, b := range g.plan.branches {
		m0, any0 := wsc.maskTmp(b.m0, alive)
		m1, any1 := wsc.maskTmp(b.m1, alive)
		if any0 || any1 {
			wsc.branchAt[b.gate] = append(wsc.branchAt[b.gate], wpinForce{pin: b.pin, m0: m0, m1: m1})
		}
	}
	for _, df := range g.plan.dffForce {
		off := int(df.dff) * nw
		for w := 0; w < nw; w++ {
			wsc.dff0[off+w] = df.m0[w] & alive[w]
			wsc.dff1[off+w] = df.m1[w] & alive[w]
		}
	}
}

// maskTmp carves an alive-filtered copy of src from the per-load arena,
// reporting whether any word is nonzero. The arena may reallocate while
// growing; previously carved slices keep pointing into the old block and
// stay valid for the duration of the load.
func (wsc *wscratch) maskTmp(src, alive []uint64) ([]uint64, bool) {
	off := len(wsc.bmask)
	any := false
	for w := range src {
		v := src[w] & alive[w]
		wsc.bmask = append(wsc.bmask, v)
		if v != 0 {
			any = true
		}
	}
	return wsc.bmask[off:len(wsc.bmask):len(wsc.bmask)], any
}

func (e *Engine) unloadPlanW(wsc *wscratch, g *wgroup) {
	nw := wsc.nw
	for _, sm := range g.plan.stems {
		off := int(sm.sig) * nw
		for w := 0; w < nw; w++ {
			wsc.stem0[off+w] = 0
			wsc.stem1[off+w] = 0
		}
	}
	for _, b := range g.plan.branches {
		wsc.branchAt[b.gate] = wsc.branchAt[b.gate][:0]
	}
	for _, df := range g.plan.dffForce {
		off := int(df.dff) * nw
		for w := 0; w < nw; w++ {
			wsc.dff0[off+w] = 0
			wsc.dff1[off+w] = 0
		}
	}
}

// bumpEpoch advances the per-time-unit stamp (see scratch.bumpEpoch).
func (wsc *wscratch) bumpEpoch() {
	if wsc.epoch == math.MaxInt32-1 {
		for i := range wsc.sigEpoch {
			wsc.sigEpoch[i] = 0
		}
		for i := range wsc.gateEpoch {
			wsc.gateEpoch[i] = 0
		}
		wsc.epoch = 0
	}
	wsc.epoch++
}

// push queues gate gi into its level bucket, once per time unit.
func (wsc *wscratch) push(csr *netlist.CSR, gi int32) {
	if wsc.gateEpoch[gi] != wsc.epoch {
		wsc.gateEpoch[gi] = wsc.epoch
		lev := csr.Level[gi]
		wsc.buckets[lev] = append(wsc.buckets[lev], gi)
		if lev > wsc.maxLev {
			wsc.maxLev = lev
		}
	}
}

// activate stamps signal s as diverged (its live words must already be
// stored in wsc.words) and queues its consumer gates.
func (wsc *wscratch) activate(csr *netlist.CSR, s int32) {
	wsc.sigEpoch[s] = wsc.epoch
	for _, gi := range csr.GateFanout(netlist.SignalID(s)) {
		wsc.push(csr, gi)
	}
}

// inputW returns the value of signal s, word w: the stored word if s
// diverged this epoch, else the broadcast fault-free value.
func (wsc *wscratch) inputW(goodVals []logic.Value, s int32, w int) logic.Word {
	if wsc.sigEpoch[s] == wsc.epoch {
		return wsc.words[int(s)*wsc.nw+w]
	}
	return bcast[goodVals[s]]
}

// evalGateW computes word w of one gate, reading inputs through read.
func evalGateW(t netlist.GateType, ins []int32, bf []wpinForce, w int, read func(int32) logic.Word) logic.Word {
	if len(bf) != 0 {
		in := func(p int) logic.Word {
			v := read(ins[p])
			for i := range bf {
				if int(bf[i].pin) == p {
					v = forceWord(v, bf[i].m0[w], bf[i].m1[w])
				}
			}
			return v
		}
		return evalForcedWith(t, len(ins), in)
	}
	v := read(ins[0])
	switch t {
	case netlist.Buf:
	case netlist.Not:
		v = v.Not()
	case netlist.And:
		for _, in := range ins[1:] {
			v = v.And(read(in))
		}
	case netlist.Nand:
		for _, in := range ins[1:] {
			v = v.And(read(in))
		}
		v = v.Not()
	case netlist.Or:
		for _, in := range ins[1:] {
			v = v.Or(read(in))
		}
	case netlist.Nor:
		for _, in := range ins[1:] {
			v = v.Or(read(in))
		}
		v = v.Not()
	case netlist.Xor:
		for _, in := range ins[1:] {
			v = v.Xor(read(in))
		}
	case netlist.Xnor:
		for _, in := range ins[1:] {
			v = v.Xor(read(in))
		}
		v = v.Not()
	}
	return v
}

// wstepGroup evaluates one time unit for wide group g, updating the
// sparse state in place, and returns the per-word masks of lanes detected
// at a primary output this cycle (not yet masked by g.alive), or nil when
// the quiescence check skipped the unit. The returned slice is the
// scratch's per-unit buffer, valid until the next call. Forcing plans
// must already be loaded.
func (e *Engine) wstepGroup(wsc *wscratch, g *wgroup, goodVals []logic.Value, state []logic.Word, divDFF *[]int32) []uint64 {
	p := &g.plan
	div := *divDFF
	nw := wsc.nw
	lw := g.liveWords

	// Quiescence: every machine equals the fault-free machine and no live
	// fault site is activated, so this time unit cannot change anything.
	if len(div) == 0 {
		activated := false
		for i := range p.sites {
			s := &p.sites[i]
			if goodVals[s.sig] == s.stuck {
				continue
			}
			for _, wi := range lw {
				if s.lanes[wi]&g.alive[wi] != 0 {
					activated = true
					break
				}
			}
			if activated {
				break
			}
		}
		if !activated {
			wsc.quiescent++
			wsc.skipped += int64(len(e.csr.Out))
			g.lastEval = 0
			return nil
		}
	}

	// Same mode split as the 64-lane engine: dense region walks once the
	// recent activity covers most of the region.
	if e.opts.Mode == ModeDense || (e.opts.Mode == ModeAuto && int(g.lastEval)*5 > len(p.gates)*2) {
		return e.wstepGroupDense(wsc, g, goodVals, state, divDFF)
	}

	c, csr := e.c, e.csr
	wsc.bumpEpoch()
	epoch := wsc.epoch
	wsc.maxLev = 0
	evalStart := wsc.evaluated

	// Seed: flip-flops that entered this time unit diverged, with dead
	// lanes pinned back to the fault-free value.
	for _, di := range div {
		q := c.DFFs[di].Q
		bg := bcast[goodVals[q]]
		qoff := int(q) * nw
		soff := int(di) * nw
		diverged := false
		for _, wi := range lw {
			w := mixAlive(state[soff+int(wi)], bg, g.alive[wi])
			if m0, m1 := wsc.stem0[qoff+int(wi)], wsc.stem1[qoff+int(wi)]; m0|m1 != 0 {
				w = forceWord(w, m0, m1)
			}
			wsc.words[qoff+int(wi)] = w
			if w != bg {
				diverged = true
			}
		}
		if diverged {
			wsc.activate(csr, int32(q))
		}
	}
	// Seed: stem forces on clean flip-flop outputs and primary inputs.
	for _, di := range p.stemQs {
		q := c.DFFs[di].Q
		if wsc.sigEpoch[q] == epoch {
			continue // already seeded as diverged (force applied above)
		}
		e.wseedStem(wsc, int32(q), goodVals, lw)
	}
	for _, sig := range p.stemPIs {
		e.wseedStem(wsc, int32(sig), goodVals, lw)
	}
	for _, gi := range p.seedGates {
		wsc.push(csr, gi)
	}

	// Levelized event propagation over live words only.
	for lev := int32(1); lev <= wsc.maxLev; lev++ {
		bucket := wsc.buckets[lev]
		for bi := 0; bi < len(bucket); bi++ {
			gi := bucket[bi]
			ins := csr.In[csr.InOff[gi]:csr.InOff[gi+1]]
			out := csr.Out[gi]
			ooff := int(out) * nw
			bg := bcast[goodVals[out]]
			bf := wsc.branchAt[gi]
			diverged := false
			for _, wi := range lw {
				wint := int(wi)
				v := evalGateW(csr.Type[gi], ins, bf, wint, func(s int32) logic.Word {
					return wsc.inputW(goodVals, s, wint)
				})
				if m0, m1 := wsc.stem0[ooff+wint], wsc.stem1[ooff+wint]; m0|m1 != 0 {
					v = forceWord(v, m0, m1)
				}
				wsc.words[ooff+wint] = v
				if v != bg {
					diverged = true
				}
			}
			wsc.evaluated++
			wsc.inert += int64(nw - len(lw))
			if diverged {
				wsc.activate(csr, out)
			}
		}
		wsc.buckets[lev] = bucket[:0]
	}
	evaluated := wsc.evaluated - evalStart
	g.lastEval = int32(evaluated)
	wsc.skipped += int64(len(csr.Out)) - evaluated

	// Detection at the region's primary outputs.
	det := wsc.det
	for w := range det {
		det[w] = 0
	}
	for _, pp := range p.pos {
		po := c.POs[pp]
		if wsc.sigEpoch[po] != epoch {
			continue
		}
		poff := int(po) * nw
		switch goodVals[po] {
		case logic.Zero:
			for _, wi := range lw {
				det[wi] |= wsc.words[poff+int(wi)].DefiniteOne()
			}
		case logic.One:
			for _, wi := range lw {
				det[wi] |= wsc.words[poff+int(wi)].DefiniteZero()
			}
		}
	}

	// Capture next state at the region's flip-flops.
	wsc.newDiv = wsc.newDiv[:0]
	for _, di := range p.dffs {
		d := c.DFFs[di].D
		doff := int(d) * nw
		foff := int(di) * nw
		forced := false
		for _, wi := range lw {
			if wsc.dff0[foff+int(wi)]|wsc.dff1[foff+int(wi)] != 0 {
				forced = true
				break
			}
		}
		if wsc.sigEpoch[d] != epoch && !forced {
			continue
		}
		bg := bcast[goodVals[d]]
		soff := int(di) * nw
		diverged := false
		for _, wi := range lw {
			wint := int(wi)
			w := bg
			if wsc.sigEpoch[d] == epoch {
				w = wsc.words[doff+wint]
			}
			if m0, m1 := wsc.dff0[foff+wint], wsc.dff1[foff+wint]; m0|m1 != 0 {
				w = forceWord(w, m0, m1)
			}
			wsc.vbuf[wint] = w
			if w != bg {
				diverged = true
			}
		}
		if diverged {
			for _, wi := range lw {
				state[soff+int(wi)] = wsc.vbuf[int(wi)]
			}
			wsc.newDiv = append(wsc.newDiv, di)
		}
	}
	*divDFF, wsc.newDiv = wsc.newDiv, (*divDFF)[:0]
	return det
}

// wseedStem activates signal sig when its stem forcing actually changes
// it from the broadcast fault-free value.
func (e *Engine) wseedStem(wsc *wscratch, sig int32, goodVals []logic.Value, lw []int32) {
	nw := wsc.nw
	bg := bcast[goodVals[sig]]
	off := int(sig) * nw
	diverged := false
	for _, wi := range lw {
		w := forceWord(bg, wsc.stem0[off+int(wi)], wsc.stem1[off+int(wi)])
		wsc.words[off+int(wi)] = w
		if w != bg {
			diverged = true
		}
	}
	if diverged {
		wsc.activate(e.csr, sig)
	}
}

// wstepGroupDense is the wide dense-region walk: materialize the region's
// boundary and sources once, then evaluate every region gate per live
// word with direct array reads.
func (e *Engine) wstepGroupDense(wsc *wscratch, g *wgroup, goodVals []logic.Value, state []logic.Word, divDFF *[]int32) []uint64 {
	p := &g.plan
	c, csr := e.c, e.csr
	nw := wsc.nw
	lw := g.liveWords
	words := wsc.words

	fill := func(sig int32) {
		bg := bcast[goodVals[sig]]
		off := int(sig) * nw
		for _, wi := range lw {
			words[off+int(wi)] = bg
		}
	}
	for _, sig := range p.boundary {
		fill(sig)
	}
	for _, di := range p.dffs {
		fill(int32(c.DFFs[di].Q))
	}
	for _, di := range p.stemQs {
		fill(int32(c.DFFs[di].Q))
	}
	for _, di := range *divDFF {
		q := c.DFFs[di].Q
		bg := bcast[goodVals[q]]
		qoff := int(q) * nw
		soff := int(di) * nw
		for _, wi := range lw {
			words[qoff+int(wi)] = mixAlive(state[soff+int(wi)], bg, g.alive[wi])
		}
	}
	applyStem := func(sig int32) {
		off := int(sig) * nw
		for _, wi := range lw {
			if m0, m1 := wsc.stem0[off+int(wi)], wsc.stem1[off+int(wi)]; m0|m1 != 0 {
				words[off+int(wi)] = forceWord(words[off+int(wi)], m0, m1)
			}
		}
	}
	for _, di := range p.stemQs {
		applyStem(int32(c.DFFs[di].Q))
	}
	for _, sig := range p.stemPIs {
		bg := bcast[goodVals[sig]]
		off := int(sig) * nw
		for _, wi := range lw {
			words[off+int(wi)] = forceWord(bg, wsc.stem0[off+int(wi)], wsc.stem1[off+int(wi)])
		}
	}

	// Evaluate every region gate; count diverged outputs for the activity
	// predictor.
	diverged := 0
	for _, gi := range p.gates {
		ins := csr.In[csr.InOff[gi]:csr.InOff[gi+1]]
		out := csr.Out[gi]
		ooff := int(out) * nw
		bg := bcast[goodVals[out]]
		bf := wsc.branchAt[gi]
		outDiv := false
		for _, wi := range lw {
			wint := int(wi)
			v := evalGateW(csr.Type[gi], ins, bf, wint, func(s int32) logic.Word {
				return words[int(s)*nw+wint]
			})
			if m0, m1 := wsc.stem0[ooff+wint], wsc.stem1[ooff+wint]; m0|m1 != 0 {
				v = forceWord(v, m0, m1)
			}
			words[ooff+wint] = v
			if v != bg {
				outDiv = true
			}
		}
		if outDiv {
			diverged++
		}
	}
	g.lastEval = int32(diverged)
	wsc.evaluated += int64(len(p.gates))
	wsc.skipped += int64(len(csr.Out) - len(p.gates))
	wsc.inert += int64(len(p.gates)) * int64(nw-len(lw))

	// Detection at the region's primary outputs.
	det := wsc.det
	for w := range det {
		det[w] = 0
	}
	for _, pp := range p.pos {
		po := c.POs[pp]
		poff := int(po) * nw
		switch goodVals[po] {
		case logic.Zero:
			for _, wi := range lw {
				det[wi] |= words[poff+int(wi)].DefiniteOne()
			}
		case logic.One:
			for _, wi := range lw {
				det[wi] |= words[poff+int(wi)].DefiniteZero()
			}
		}
	}

	// Capture next state at the region's flip-flops, rebuilding the
	// sparse diverged list.
	wsc.newDiv = wsc.newDiv[:0]
	for _, di := range p.dffs {
		d := c.DFFs[di].D
		doff := int(d) * nw
		foff := int(di) * nw
		soff := int(di) * nw
		bg := bcast[goodVals[d]]
		divd := false
		for _, wi := range lw {
			wint := int(wi)
			w := words[doff+wint]
			if m0, m1 := wsc.dff0[foff+wint], wsc.dff1[foff+wint]; m0|m1 != 0 {
				w = forceWord(w, m0, m1)
			}
			wsc.vbuf[wint] = w
			if w != bg {
				divd = true
			}
		}
		if divd {
			for _, wi := range lw {
				state[soff+int(wi)] = wsc.vbuf[int(wi)]
			}
			wsc.newDiv = append(wsc.newDiv, di)
		}
	}
	*divDFF, wsc.newDiv = wsc.newDiv, (*divDFF)[:0]
	return det
}

// wextendGroup simulates seq for one wide group, committing its state and
// appending detections (lane = word*64 + bit) to wsc.dets.
func (e *Engine) wextendGroup(wsc *wscratch, g *wgroup, gi int, seq vectors.Sequence, goodVals [][]logic.Value) {
	e.loadPlanW(wsc, g)
	detAll := wsc.detAll
	for w := range detAll {
		detAll[w] = 0
	}
	for u := range seq {
		det := e.wstepGroup(wsc, g, goodVals[u], g.state, &g.divDFF)
		if det != nil {
			for _, wi := range g.liveWords {
				d := det[wi] & g.alive[wi] &^ detAll[wi]
				for m := d; m != 0; {
					b := trailingZeros(m)
					m &^= 1 << uint(b)
					wsc.dets = append(wsc.dets, detection{u: u, gi: gi, lane: int(wi)*64 + b})
				}
				detAll[wi] |= d
			}
		}
		done := true
		for _, wi := range g.liveWords {
			if g.alive[wi]&^detAll[wi] != 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	e.unloadPlanW(wsc, g)
}

// wevaluateGroup simulates seq for one wide group without committing
// state, leaving the per-word newly-detected masks in wsc.detAll and
// adding the group's divergence contribution to *divergence.
func (e *Engine) wevaluateGroup(wsc *wscratch, g *wgroup, seq vectors.Sequence, goodVals [][]logic.Value, divergence *int) {
	nw := wsc.nw
	wsc.divDFF = wsc.divDFF[:0]
	for _, di := range g.divDFF {
		off := int(di) * nw
		copy(wsc.state[off:off+nw], g.state[off:off+nw])
		wsc.divDFF = append(wsc.divDFF, di)
	}
	e.loadPlanW(wsc, g)
	detAll := wsc.detAll
	for w := range detAll {
		detAll[w] = 0
	}
	steps := 0
	for u := range seq {
		det := e.wstepGroup(wsc, g, goodVals[u], wsc.state, &wsc.divDFF)
		if det != nil {
			for _, wi := range g.liveWords {
				detAll[wi] |= det[wi] & g.alive[wi]
			}
		}
		steps = u + 1
		done := true
		for _, wi := range g.liveWords {
			if g.alive[wi]&^detAll[wi] != 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	e.unloadPlanW(wsc, g)
	// Divergence over the diverged flip-flops only (everything else
	// equals the fault-free state by the sparse invariant). A lane counts
	// once however many flip-flops it diverges in, so the per-flip-flop
	// masks are ORed per word before the popcount (wsc.det is free here —
	// the step loop has ended).
	if steps == len(seq) && len(seq) > 0 {
		div := wsc.det
		for w := range div {
			div[w] = 0
		}
		goodFinal := goodVals[len(seq)-1]
		for _, di := range wsc.divDFF {
			ff := e.c.DFFs[di]
			off := int(di) * nw
			for _, wi := range g.liveWords {
				switch goodFinal[ff.D] {
				case logic.Zero:
					div[wi] |= wsc.state[off+int(wi)].DefiniteOne()
				case logic.One:
					div[wi] |= wsc.state[off+int(wi)].DefiniteZero()
				}
			}
		}
		for _, wi := range g.liveWords {
			*divergence += popcount(div[wi] & g.alive[wi] &^ detAll[wi])
		}
	}
}

// appendDetected appends the fault indices of the set lanes in det
// (word-major) to newly, in ascending lane order.
func appendDetected(newly []int, fault []int, det []uint64) []int {
	for w, m := range det {
		for m != 0 {
			b := trailingZeros(m)
			m &^= 1 << uint(b)
			newly = append(newly, fault[w*64+b])
		}
	}
	return newly
}
