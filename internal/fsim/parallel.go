package fsim

// Sharded parallel scheduler for the Incremental simulator.
//
// Incremental packs 64 faulty machines per group, and the groups are
// mutually independent once the fault-free value trace is known: each
// group owns its state words, the circuit, plans, and fault list are
// read-only, and the forcing masks and propagation stamps live in a
// per-worker scratch. The scheduler therefore computes the good-machine
// trace for the whole subsequence first, fans the live groups out to a
// goroutine pool, and merges the per-group detections back in the serial
// schedule's (time, group, lane) order. Detection results — Detected,
// DetTime, NumDetected, and the order of newly reported faults — are
// bit-for-bit identical to the serial path for every worker count.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// DefaultParallelism is the goroutine count Run uses for group sharding:
// one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// earlyExitStride is the number of time units RunParallel extends between
// checks of the all-detected early-exit condition. It scales with the
// circuit's sequential depth (memoized on the Circuit): a fault needs at
// least that many cycles to traverse the state registers to an
// observation point, so shallow circuits can afford frequent checks and
// exit as soon as coverage completes, while deep circuits use longer
// chunks that amortize trace construction and goroutine scheduling.
func earlyExitStride(c *netlist.Circuit) int {
	stride := 4 * (c.SequentialDepth() + 1)
	if stride < 8 {
		stride = 8
	}
	if stride > 256 {
		stride = 256
	}
	return stride
}

// SetParallelism sets the number of goroutines used to shard fault groups
// (n <= 1 selects the serial path). Any value produces identical
// detection results; parallelism only helps when the fault list spans
// several 64-fault groups.
func (inc *Incremental) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	inc.workers = n
}

// Parallelism returns the configured worker count.
func (inc *Incremental) Parallelism() int { return inc.workers }

// liveGroups returns the indices of groups that still carry undetected
// faults. The returned slice is pooled on the Incremental and valid until
// the next call.
func (inc *Incremental) liveGroups() []int {
	live := inc.liveBuf[:0]
	for gi := range inc.groups {
		if inc.groups[gi].alive != 0 {
			live = append(live, gi)
		}
	}
	inc.liveBuf = live
	return live
}

// ensureWorkerScratch grows the per-worker scratch pool to n entries.
// Scratches are retained across calls: Extend/Evaluate invocations are
// sequential, so reuse is safe and keeps the hot path allocation-free.
func (inc *Incremental) ensureWorkerScratch(n int) {
	for len(inc.workerScratch) < n {
		inc.workerScratch = append(inc.workerScratch, newScratch(inc.c))
	}
}

// shard runs fn(workerID, idx) for every idx in [0, n) on a pool of at
// most inc.workers goroutines, each holding a private scratch.
func (inc *Incremental) shard(n int, fn func(w, idx int)) {
	workers := inc.workers
	if workers > n {
		workers = n
	}
	inc.ensureWorkerScratch(workers)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx := int(atomic.AddInt64(&next, 1))
				if idx >= n {
					return
				}
				fn(w, idx)
			}
		}(w)
	}
	wg.Wait()
}

// extendParallel is Extend's sharded path: live groups are simulated
// concurrently against the precomputed good trace, committing their state
// words, and detections are merged in serial order afterwards.
func (inc *Incremental) extendParallel(seq vectors.Sequence, goodVals [][]logic.Value, live []int) []int {
	inc.shard(len(live), func(w, idx int) {
		gi := live[idx]
		inc.extendGroup(inc.workerScratch[w], &inc.groups[gi], gi, seq, goodVals)
	})
	// Gather the per-worker detection buffers and merge them in the
	// serial emission order (mergeDetections sorts by time, group, lane).
	all := inc.sc.dets[:0]
	for _, sc := range inc.workerScratch {
		all = append(all, sc.dets...)
		sc.dets = sc.dets[:0]
		sc.flushStats()
	}
	newly := inc.mergeDetections(all, len(seq))
	inc.sc.dets = all[:0]
	return newly
}

// evaluateParallel is Evaluate's sharded path: non-committing, merging
// per-group newly-detected lists in group order (the serial order) and
// summing divergence.
func (inc *Incremental) evaluateParallel(seq vectors.Sequence, goodVals [][]logic.Value, live []int) (newly []int, divergence int) {
	newlyByIdx := make([][]int, len(live))
	divByIdx := make([]int, len(live))
	inc.shard(len(live), func(w, idx int) {
		g := &inc.groups[live[idx]]
		sc := inc.workerScratch[w]
		detAll := inc.evaluateGroup(sc, g, seq, goodVals, &divByIdx[idx])
		var out []int
		for detAll != 0 {
			lane := trailingZeros(detAll)
			detAll &^= 1 << uint(lane)
			out = append(out, g.fault[lane])
		}
		newlyByIdx[idx] = out
	})
	for _, sc := range inc.workerScratch {
		sc.flushStats()
	}
	for idx := range live {
		newly = append(newly, newlyByIdx[idx]...)
		divergence += divByIdx[idx]
	}
	return newly, divergence
}
