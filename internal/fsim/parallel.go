package fsim

// Sharded parallel scheduler for the Incremental simulator.
//
// Incremental packs 64 faulty machines per group, and the groups are
// mutually independent once the fault-free value trace is known: each
// group owns its state words, the circuit and fault list are read-only,
// and the forcing masks live in a per-worker scratch. The scheduler
// therefore computes the good-machine trace for the whole subsequence
// first, fans the live groups out to a goroutine pool, and merges the
// per-group detections back in the serial schedule's (time, group, lane)
// order. Detection results — Detected, DetTime, NumDetected, and the
// order of newly reported faults — are bit-for-bit identical to the
// serial path for every worker count.

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"seqbist/internal/logic"
	"seqbist/internal/vectors"
)

// DefaultParallelism is the goroutine count Run uses for group sharding:
// one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// SetParallelism sets the number of goroutines used to shard fault groups
// (n <= 1 selects the serial path). Any value produces identical
// detection results; parallelism only helps when the fault list spans
// several 64-fault groups.
func (inc *Incremental) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	inc.workers = n
}

// Parallelism returns the configured worker count.
func (inc *Incremental) Parallelism() int { return inc.workers }

// liveGroups returns the indices of groups that still carry undetected
// faults.
func (inc *Incremental) liveGroups() []int {
	live := make([]int, 0, len(inc.groups))
	for gi := range inc.groups {
		if inc.groups[gi].alive != 0 {
			live = append(live, gi)
		}
	}
	return live
}

// ensureWorkerScratch grows the per-worker scratch pool to n entries.
// Scratches are retained across calls: Extend/Evaluate invocations are
// sequential, so reuse is safe and keeps the hot path allocation-free.
func (inc *Incremental) ensureWorkerScratch(n int) {
	for len(inc.workerScratch) < n {
		inc.workerScratch = append(inc.workerScratch, newScratch(inc.c))
	}
}

// shard runs fn(workerID, idx) for every idx in [0, n) on a pool of at
// most inc.workers goroutines, each holding a private scratch.
func (inc *Incremental) shard(n int, fn func(w, idx int)) {
	workers := inc.workers
	if workers > n {
		workers = n
	}
	inc.ensureWorkerScratch(workers)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx := int(atomic.AddInt64(&next, 1))
				if idx >= n {
					return
				}
				fn(w, idx)
			}
		}(w)
	}
	wg.Wait()
}

// goodTrace advances the good machine through seq (committing its state)
// and snapshots the full signal-value vector at every time unit.
func (inc *Incremental) goodTrace(seq vectors.Sequence) [][]logic.Value {
	trace := make([][]logic.Value, len(seq))
	for u, vec := range seq {
		inc.good.Step(inc.goodState, vec, inc.goodPO)
		vals := inc.good.Values()
		snapshot := make([]logic.Value, len(vals))
		copy(snapshot, vals)
		trace[u] = snapshot
	}
	return trace
}

// detection locates one newly detected fault in the serial schedule:
// relative time unit u, group index gi, lane within the group.
type detection struct {
	u, gi, lane int
}

// extendParallel is Extend's sharded path: live groups are simulated
// concurrently against the precomputed good trace, committing their state
// words, and detections are merged in serial order afterwards.
func (inc *Incremental) extendParallel(seq vectors.Sequence, live []int) []int {
	goodVals := inc.goodTrace(seq)
	detsByIdx := make([][]detection, len(live))
	inc.shard(len(live), func(w, idx int) {
		gi := live[idx]
		g := &inc.groups[gi]
		sc := inc.workerScratch[w]
		inc.loadPlan(sc, g)
		alive := g.alive
		var detAll uint64
		var dets []detection
		for u, vec := range seq {
			det := inc.stepGroup(sc, g, vec, goodVals[u], g.state) & alive &^ detAll
			for m := det; m != 0; {
				lane := trailingZeros(m)
				m &^= 1 << uint(lane)
				dets = append(dets, detection{u: u, gi: gi, lane: lane})
			}
			detAll |= det
			if alive&^detAll == 0 {
				// Every lane of this group is detected; further vectors
				// cannot change its outcome (matching the serial path,
				// which skips dead groups).
				break
			}
		}
		inc.unloadPlan(sc, g)
		detsByIdx[idx] = dets
	})

	// Merge in the serial emission order: ascending time unit, then group
	// index, then lane.
	var all []detection
	for _, dets := range detsByIdx {
		all = append(all, dets...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.u != b.u {
			return a.u < b.u
		}
		if a.gi != b.gi {
			return a.gi < b.gi
		}
		return a.lane < b.lane
	})
	var newly []int
	for _, d := range all {
		g := &inc.groups[d.gi]
		fi := g.fault[d.lane]
		inc.detected[fi] = true
		inc.detTime[fi] = inc.now + d.u
		inc.numDet++
		newly = append(newly, fi)
		g.alive &^= 1 << uint(d.lane)
	}
	inc.now += len(seq)
	return newly
}

// evaluateParallel is Evaluate's sharded path: non-committing, merging
// per-group newly-detected lists in group order (the serial order) and
// summing divergence.
func (inc *Incremental) evaluateParallel(seq vectors.Sequence, goodValsByTime [][]logic.Value, live []int) (newly []int, divergence int) {
	newlyByIdx := make([][]int, len(live))
	divByIdx := make([]int, len(live))
	inc.shard(len(live), func(w, idx int) {
		g := &inc.groups[live[idx]]
		sc := inc.workerScratch[w]
		detAll := inc.evaluateGroup(sc, g, seq, goodValsByTime, &divByIdx[idx])
		var out []int
		for detAll != 0 {
			lane := trailingZeros(detAll)
			detAll &^= 1 << uint(lane)
			out = append(out, g.fault[lane])
		}
		newlyByIdx[idx] = out
	})
	for idx := range live {
		newly = append(newly, newlyByIdx[idx]...)
		divergence += divByIdx[idx]
	}
	return newly, divergence
}
