package fsim

// Cone-sharded parallel scheduler for the Engine.
//
// Groups are mutually independent once the fault-free value trace is
// known: each group owns its state words, the circuit, plans, and fault
// list are read-only, and the forcing masks and propagation stamps live
// in a per-worker scratch. The scheduler therefore computes the
// good-machine trace for the whole subsequence first, fans the live
// groups out to a fixed set of workers, and merges the per-group
// detections back in the serial schedule's (time, group, lane) order.
// Detection results — Detected, DetTime, NumDetected, and the order of
// newly reported faults — are bit-for-bit identical to the serial path
// for every worker count.
//
// Work is divided by static cone-aware shards rather than a dynamic
// work-stealing queue. Groups are packed in cone-locality order
// (packOrder), so consecutive groups share most of their active regions;
// netlist.ConePartition cuts that ordered list into contiguous,
// weight-balanced shards at the points of least region overlap. Each
// worker then owns a near-disjoint slice of the netlist: its scratch's
// per-signal words, stamps, and forcing masks keep touching the same
// cache lines from group to group instead of interleaving the whole
// netlist with every other worker. Shards are rebuilt only when enough
// groups die for the balance to drift (half the groups since the last
// build), so the steady state has no scheduling overhead beyond one
// goroutine launch per shard.

import (
	"runtime"
	"sync"

	"seqbist/internal/logic"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// DefaultParallelism is the worker count Run uses for group sharding: one
// worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// earlyExitStride is the number of time units Run extends between checks
// of the all-detected early-exit condition. It scales with the circuit's
// sequential depth (memoized on the Circuit): a fault needs at least that
// many cycles to traverse the state registers to an observation point, so
// shallow circuits can afford frequent checks and exit as soon as
// coverage completes, while deep circuits use longer chunks that amortize
// trace construction and goroutine scheduling.
func earlyExitStride(c *netlist.Circuit) int {
	stride := 4 * (c.SequentialDepth() + 1)
	if stride < 8 {
		stride = 8
	}
	if stride > 256 {
		stride = 256
	}
	return stride
}

// liveGroups returns the indices of groups that still carry undetected
// faults. The returned slice is pooled on the Engine and valid until the
// next call.
func (e *Engine) liveGroups() []int {
	live := e.liveBuf[:0]
	if e.nw > 1 {
		for gi := range e.wgroups {
			if e.wgroups[gi].anyAlive() {
				live = append(live, gi)
			}
		}
	} else {
		for gi := range e.groups {
			if e.groups[gi].alive != 0 {
				live = append(live, gi)
			}
		}
	}
	e.liveBuf = live
	return live
}

// planOf returns the simulation plan of group gi at the engine's lane
// width.
func (e *Engine) planOf(gi int) *plan {
	if e.nw > 1 {
		return &e.wgroups[gi].plan
	}
	return &e.groups[gi].plan
}

// ensureShards (re)builds the static cone-aware shards over the live
// groups. A shard is a contiguous run of the locality-ordered group list;
// netlist.ConePartition balances the region weights and places the cuts
// where adjacent regions overlap least. Shards are kept until half the
// groups they were built over have died, then rebuilt to restore balance.
func (e *Engine) ensureShards(live []int) {
	if e.shards != nil && len(live)*2 > e.shardLive {
		return
	}
	cones := e.conesBuf[:0]
	for _, gi := range live {
		cones = append(cones, e.planOf(gi).gates)
	}
	e.conesBuf = cones
	parts := netlist.ConePartition(cones, e.workers)
	shards := e.shards[:0]
	for _, part := range parts {
		var shard []int
		if len(shards) < len(e.shards) {
			shard = e.shards[len(shards)][:0]
		}
		for _, idx := range part {
			shard = append(shard, live[idx])
		}
		shards = append(shards, shard)
	}
	e.shards = shards
	e.shardLive = len(live)
}

// ensureWorkerScratch grows the per-worker scratch pool to n entries.
// Scratches are retained across calls: Extend/Evaluate invocations are
// sequential, so reuse is safe and keeps the hot path allocation-free.
func (e *Engine) ensureWorkerScratch(n int) {
	if e.nw > 1 {
		for len(e.workerWide) < n {
			e.workerWide = append(e.workerWide, newWScratch(e.c, e.nw))
		}
		return
	}
	for len(e.workerScratch) < n {
		e.workerScratch = append(e.workerScratch, newScratch(e.c))
	}
}

// runShards executes fn(worker, group index) for every live group of
// every shard, one goroutine per shard. Dead groups (detected since the
// shards were built) are skipped.
func (e *Engine) runShards(fn func(w, gi int)) {
	var wg sync.WaitGroup
	for w := range e.shards {
		if len(e.shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, gi := range e.shards[w] {
				if e.nw > 1 {
					if !e.wgroups[gi].anyAlive() {
						continue
					}
				} else if e.groups[gi].alive == 0 {
					continue
				}
				fn(w, gi)
			}
		}(w)
	}
	wg.Wait()
}

// extendParallel is Extend's sharded path: live groups are simulated
// concurrently against the precomputed good trace, committing their state
// words, and detections are merged in serial order afterwards.
func (e *Engine) extendParallel(seq vectors.Sequence, goodVals [][]logic.Value, live []int) []int {
	e.ensureShards(live)
	e.ensureWorkerScratch(len(e.shards))
	if e.nw > 1 {
		e.runShards(func(w, gi int) {
			e.wextendGroup(e.workerWide[w], &e.wgroups[gi], gi, seq, goodVals)
		})
		// Gather the per-worker detection buffers and merge them in the
		// serial emission order (mergeDetections sorts by time, group,
		// lane).
		all := e.wsc.dets[:0]
		for _, wsc := range e.workerWide {
			all = append(all, wsc.dets...)
			wsc.dets = wsc.dets[:0]
			wsc.flushInto(e)
		}
		newly := e.mergeDetections(all, len(seq))
		e.wsc.dets = all[:0]
		return newly
	}
	e.runShards(func(w, gi int) {
		e.extendGroup(e.workerScratch[w], &e.groups[gi], gi, seq, goodVals)
	})
	all := e.sc.dets[:0]
	for _, sc := range e.workerScratch {
		all = append(all, sc.dets...)
		sc.dets = sc.dets[:0]
		sc.flushInto(e)
	}
	newly := e.mergeDetections(all, len(seq))
	e.sc.dets = all[:0]
	return newly
}

// evaluateParallel is Evaluate's sharded path: non-committing, merging
// per-group newly-detected lists in group order (the serial order) and
// summing divergence. The per-group merge buffers are pooled on the
// Engine.
func (e *Engine) evaluateParallel(seq vectors.Sequence, goodVals [][]logic.Value, live []int) (newly []int, divergence int) {
	e.ensureShards(live)
	e.ensureWorkerScratch(len(e.shards))
	ngroups := len(e.groups)
	if e.nw > 1 {
		ngroups = len(e.wgroups)
	}
	for len(e.newlyBuf) < ngroups {
		e.newlyBuf = append(e.newlyBuf, nil)
	}
	if cap(e.divBuf) < ngroups {
		e.divBuf = make([]int, ngroups)
	}
	e.divBuf = e.divBuf[:ngroups]
	for _, gi := range live {
		e.newlyBuf[gi] = e.newlyBuf[gi][:0]
		e.divBuf[gi] = 0
	}
	if e.nw > 1 {
		e.runShards(func(w, gi int) {
			g := &e.wgroups[gi]
			wsc := e.workerWide[w]
			e.wevaluateGroup(wsc, g, seq, goodVals, &e.divBuf[gi])
			e.newlyBuf[gi] = appendDetected(e.newlyBuf[gi], g.fault, wsc.detAll)
		})
		for _, wsc := range e.workerWide {
			wsc.flushInto(e)
		}
	} else {
		e.runShards(func(w, gi int) {
			g := &e.groups[gi]
			detAll := e.evaluateGroup(e.workerScratch[w], g, seq, goodVals, &e.divBuf[gi])
			for detAll != 0 {
				lane := trailingZeros(detAll)
				detAll &^= 1 << uint(lane)
				e.newlyBuf[gi] = append(e.newlyBuf[gi], g.fault[lane])
			}
		})
		for _, sc := range e.workerScratch {
			sc.flushInto(e)
		}
	}
	for _, gi := range live {
		newly = append(newly, e.newlyBuf[gi]...)
		divergence += e.divBuf[gi]
	}
	return newly, divergence
}
