package report

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tbl := New("Demo", "circuit", "len").AlignLeft(0)
	tbl.AddRow("s27", "10")
	tbl.AddRow("s35932", "257")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line %q", lines[0])
	}
	// All rows equal width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
		}
	}
	// Left-aligned circuit, right-aligned numbers.
	if !strings.HasPrefix(lines[3], "s27 ") {
		t.Errorf("circuit not left aligned: %q", lines[3])
	}
	if !strings.HasSuffix(lines[3], " 10") {
		t.Errorf("number not right aligned: %q", lines[3])
	}
}

func TestMissingAndExtraCells(t *testing.T) {
	tbl := New("", "a", "b")
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3")
	out := tbl.String()
	if strings.Contains(out, "3") {
		t.Errorf("extra cell leaked: %s", out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestMarkdown(t *testing.T) {
	tbl := New("T", "name", "v").AlignLeft(0)
	tbl.AddRow("x", "1")
	md := tbl.Markdown()
	for _, want := range []string{"**T**", "| name | v |", "|:---|---:|", "| x | 1 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Itoa(42) != "42" {
		t.Error("Itoa")
	}
	if Ratio(0.456) != "0.46" {
		t.Errorf("Ratio = %q", Ratio(0.456))
	}
	if Fixed(30.625) != "30.62" && Fixed(30.625) != "30.63" {
		t.Errorf("Fixed = %q", Fixed(30.625))
	}
}

func TestAlignLeftOutOfRange(t *testing.T) {
	// Out-of-range column indices must be ignored, not panic.
	tbl := New("", "a").AlignLeft(-1, 5)
	tbl.AddRow("x")
	_ = tbl.String()
}
