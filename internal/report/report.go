// Package report renders small result tables in two forms: aligned
// monospace text in the style of the paper's tables (Table.String), and
// GitHub-flavored Markdown (Table.Markdown) used by the generated
// experiment report (`cmd/tables -md`) and by the service's sweep
// summaries. Columns default to right alignment for numeric data;
// AlignLeft overrides per column. The Itoa/Ratio/Fixed helpers keep cell
// formatting uniform across every table the repository emits, which is
// what makes regenerated reports diff-stable.
package report

import (
	"fmt"
	"strings"
)

// Align selects column alignment.
type Align int

// Alignment values.
const (
	Left Align = iota
	Right
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	columns []string
	aligns  []Align
	rows    [][]string
}

// New returns a table with the given title and column headers. Columns
// default to right alignment (numeric), which callers can override with
// AlignLeft.
func New(title string, columns ...string) *Table {
	t := &Table{Title: title, columns: columns, aligns: make([]Align, len(columns))}
	for i := range t.aligns {
		t.aligns[i] = Right
	}
	return t
}

// AlignLeft makes the given column indices left-aligned.
func (t *Table) AlignLeft(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.aligns) {
			t.aligns[c] = Left
		}
	}
	return t
}

// AddRow appends a row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.columns))
	for i := 0; i < len(row) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func (t *Table) widths() []int {
	w := make([]int, len(t.columns))
	for i, c := range t.columns {
		w[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

func pad(s string, width int, a Align) string {
	if a == Right {
		return strings.Repeat(" ", width-len(s)) + s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// String renders the aligned text form.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i := range t.columns {
			if i > 0 {
				sb.WriteString("  ")
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			sb.WriteString(pad(cell, w[i], t.aligns[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.columns)
	total := 0
	for i, wi := range w {
		if i > 0 {
			total += 2
		}
		total += wi
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the GitHub-flavored Markdown form.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.columns, " | ") + " |\n")
	sb.WriteString("|")
	for _, a := range t.aligns {
		if a == Right {
			sb.WriteString("---:|")
		} else {
			sb.WriteString(":---|")
		}
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Itoa formats an int.
func Itoa(v int) string { return fmt.Sprintf("%d", v) }

// Ratio formats a ratio with two decimals, as the paper prints them
// (e.g. "0.46").
func Ratio(v float64) string { return fmt.Sprintf("%.2f", v) }

// Fixed formats a float with two decimals.
func Fixed(v float64) string { return fmt.Sprintf("%.2f", v) }
