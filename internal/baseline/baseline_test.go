package baseline

import (
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/iscas"
	"seqbist/internal/logic"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

func s27T0() vectors.Sequence {
	return vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
}

func TestPartitionPreservesCoverage(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := s27T0()
	res := Partition(c, fl, t0)
	if res.TotalLen != t0.Len() {
		t.Errorf("partitioning must load every vector: total %d, want %d", res.TotalLen, t0.Len())
	}
	// Re-verify coverage by simulating the materialized segments.
	segs := res.Segments(t0)
	seen := make([]bool, len(fl))
	covered := 0
	base := fsim.Run(c, fl, t0)
	for _, s := range segs {
		r := fsim.Run(c, fl, s)
		for k := range fl {
			if r.Detected[k] && base.Detected[k] && !seen[k] {
				seen[k] = true
				covered++
			}
		}
	}
	if covered < res.Coverage {
		t.Errorf("segments cover %d faults, result claims %d", covered, res.Coverage)
	}
	if covered < base.NumDetected {
		t.Errorf("partition lost coverage: %d < %d", covered, base.NumDetected)
	}
}

func TestPartitionSegmentsContiguous(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := s27T0()
	res := Partition(c, fl, t0)
	if len(res.Boundaries) == 0 || res.Boundaries[0] != 0 {
		t.Fatalf("boundaries %v", res.Boundaries)
	}
	for i := 1; i < len(res.Boundaries); i++ {
		if res.Boundaries[i] <= res.Boundaries[i-1] {
			t.Fatalf("boundaries not increasing: %v", res.Boundaries)
		}
	}
	segs := res.Segments(t0)
	total := 0
	maxLen := 0
	var rejoined vectors.Sequence
	for _, s := range segs {
		total += s.Len()
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
		rejoined = rejoined.Concat(s)
	}
	if total != t0.Len() || !rejoined.Equal(t0) {
		t.Error("segments do not re-assemble T0")
	}
	if maxLen != res.MaxLen {
		t.Errorf("MaxLen %d, recomputed %d", res.MaxLen, maxLen)
	}
}

func TestPartitionEmpty(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	res := Partition(c, fl, nil)
	if res.TotalLen != 0 || len(res.Boundaries) != 0 {
		t.Errorf("empty partition: %+v", res)
	}
}

func TestPartitionMaxLenAtMostT0(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	t0 := vectors.RandomSequence(xrand.New(3), c.NumPIs(), 60)
	res := Partition(c, fl, t0)
	if res.MaxLen > t0.Len() || res.MaxLen < 1 {
		t.Errorf("MaxLen = %d for |T0| = %d", res.MaxLen, t0.Len())
	}
}

func TestLFSRDeterministicAndBinary(t *testing.T) {
	a := NewLFSR(7, 42).Sequence(50)
	b := NewLFSR(7, 42).Sequence(50)
	if !a.Equal(b) {
		t.Error("LFSR not deterministic")
	}
	for _, v := range a {
		for _, bit := range v {
			if !bit.IsBinary() {
				t.Fatal("LFSR produced non-binary value")
			}
		}
	}
	c := NewLFSR(7, 43).Sequence(50)
	if a.Equal(c) {
		t.Error("different seeds gave identical streams")
	}
}

func TestLFSRZeroSeedHandled(t *testing.T) {
	l := NewLFSR(4, 0)
	seq := l.Sequence(20)
	ones := 0
	for _, v := range seq {
		for _, bit := range v {
			if bit == logic.One {
				ones++
			}
		}
	}
	if ones == 0 {
		t.Error("zero-seed LFSR stuck at all-zero")
	}
}

func TestLFSRReasonablyBalanced(t *testing.T) {
	seq := NewLFSR(8, 7).Sequence(500)
	ones := 0
	for _, v := range seq {
		for _, bit := range v {
			if bit == logic.One {
				ones++
			}
		}
	}
	total := 500 * 8
	if ones < total/3 || ones > total*2/3 {
		t.Errorf("LFSR bias: %d/%d ones", ones, total)
	}
}

func TestHoldSequence(t *testing.T) {
	seq := NewLFSR(5, 9).HoldSequence(20, 4)
	if seq.Len() != 20 {
		t.Fatalf("length %d", seq.Len())
	}
	// First four vectors identical, next four identical, etc.
	for g := 0; g < 4; g++ {
		for i := 1; i < 4; i++ {
			if !seq[g*4+i].Equal(seq[g*4]) {
				t.Fatalf("hold group %d not constant", g)
			}
		}
	}
	// hold < 1 coerced.
	if got := NewLFSR(5, 9).HoldSequence(10, 0); got.Len() != 10 {
		t.Error("hold=0 mishandled")
	}
}

// TestLFSRNoGuarantee demonstrates the paper's motivating claim: an LFSR
// stream as long as the full expanded deterministic test does not reach
// the deterministic coverage on s27.
func TestLFSRCoverageBelowDeterministic(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	det := fsim.Run(c, fl, s27T0())
	lf := fsim.Run(c, fl, NewLFSR(c.NumPIs(), 1).Sequence(s27T0().Len()))
	if lf.NumDetected > det.NumDetected {
		// Not impossible in principle, but with equal length the
		// deterministic sequence should win on s27.
		t.Errorf("LFSR (%d) beat deterministic (%d) at equal length",
			lf.NumDetected, det.NumDetected)
	}
}
