// Package baseline implements the two test-application alternatives the
// paper compares its scheme against in §1:
//
//   - Partitioning: split T0 into contiguous subsequences, load each into
//     the on-chip memory separately and apply it unexpanded. Every vector
//     of T0 is loaded (total load = |T0|), and the maximum segment length
//     — hence the memory — is bounded from below by the need to preserve
//     T0's coverage across segment boundaries (each segment restarts from
//     the unknown state).
//   - Pseudo-random BIST (an LFSR, optionally with the vector-hold
//     manipulation of the paper's reference [3]): no loading at all, but
//     no coverage guarantee.
//
// The benchmarks and the comparison example use these to reproduce the
// paper's qualitative claims: the subsequence-expansion scheme loads
// fewer vectors than partitioning, needs less memory, and guarantees the
// coverage an LFSR cannot.
package baseline

import (
	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// PartitionResult describes a coverage-preserving partition of T0.
type PartitionResult struct {
	// Boundaries are the segment start indices (first is always 0).
	Boundaries []int
	// MaxLen is the longest segment (the memory requirement).
	MaxLen int
	// TotalLen is the number of loaded vectors; for partitioning this is
	// always |T0|.
	TotalLen int
	// Coverage is the number of faults the segments detect together,
	// each applied from the all-unknown state.
	Coverage int
	// Sims counts the full fault simulations spent searching.
	Sims int
}

// Segments materializes the partition's subsequences.
func (r *PartitionResult) Segments(t0 vectors.Sequence) []vectors.Sequence {
	var out []vectors.Sequence
	for i, start := range r.Boundaries {
		end := t0.Len()
		if i+1 < len(r.Boundaries) {
			end = r.Boundaries[i+1]
		}
		out = append(out, t0.Subsequence(start, end-1))
	}
	return out
}

// Partition splits t0 into contiguous segments, each applied from the
// unknown state, such that together they detect every fault t0 detects.
// Greedy top-down bisection: repeatedly split the longest segment at its
// midpoint if coverage is preserved, until no segment can be split. This
// minimizes the maximum segment length heuristically — the quantity the
// paper identifies as the partitioning scheme's memory bottleneck.
func Partition(c *netlist.Circuit, fl []faults.Fault, t0 vectors.Sequence) PartitionResult {
	res := PartitionResult{TotalLen: t0.Len()}
	if t0.Len() == 0 {
		return res
	}
	base := fsim.Run(c, fl, t0)
	target := base.NumDetected

	covers := func(bounds []int) bool {
		res.Sims++
		detected := 0
		seen := make([]bool, len(fl))
		for i, start := range bounds {
			end := t0.Len()
			if i+1 < len(bounds) {
				end = bounds[i+1]
			}
			r := fsim.Run(c, fl, t0.Subsequence(start, end-1))
			for k := range fl {
				if r.Detected[k] && !seen[k] && base.Detected[k] {
					seen[k] = true
					detected++
				}
			}
		}
		return detected >= target
	}

	bounds := []int{0}
	unsplittable := make(map[[2]int]bool) // segments proven unbisectable
	for {
		// Candidate segments by decreasing length; bisect the first that
		// preserves coverage. Stop when every segment is unsplittable.
		type seg struct{ idx, start, end int }
		var segs []seg
		for i, start := range bounds {
			end := t0.Len()
			if i+1 < len(bounds) {
				end = bounds[i+1]
			}
			if end-start >= 2 && !unsplittable[[2]int{start, end}] {
				segs = append(segs, seg{i, start, end})
			}
		}
		if len(segs) == 0 {
			break
		}
		// Longest first.
		best := 0
		for i := 1; i < len(segs); i++ {
			if segs[i].end-segs[i].start > segs[best].end-segs[best].start {
				best = i
			}
		}
		s := segs[best]
		mid := (s.start + s.end) / 2
		candidate := make([]int, 0, len(bounds)+1)
		candidate = append(candidate, bounds[:s.idx+1]...)
		candidate = append(candidate, mid)
		candidate = append(candidate, bounds[s.idx+1:]...)
		if covers(candidate) {
			bounds = candidate
		} else {
			unsplittable[[2]int{s.start, s.end}] = true
		}
	}
	res.Boundaries = bounds
	for i, start := range bounds {
		end := t0.Len()
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		if end-start > res.MaxLen {
			res.MaxLen = end - start
		}
	}
	res.Coverage = target
	return res
}
