package baseline

import (
	"fmt"

	"seqbist/internal/logic"
	"seqbist/internal/vectors"
)

// LFSR is a Fibonacci linear-feedback shift register producing
// pseudo-random test vectors, the classical test-per-clock BIST source
// the paper's references [3] and [4] start from. The register is 32 bits
// with the maximal-length polynomial x^32+x^22+x^2+x+1; vector bits are
// tapped from the low end after each shift.
type LFSR struct {
	state uint32
	width int
}

// NewLFSR returns a generator of vectors with the given width. A zero
// seed is replaced by 1 (the all-zero LFSR state is a fixed point).
func NewLFSR(width int, seed uint32) *LFSR {
	if width <= 0 {
		panic(fmt.Sprintf("baseline: LFSR width %d", width))
	}
	if seed == 0 {
		seed = 1
	}
	return &LFSR{state: seed, width: width}
}

// step advances the register one bit.
func (l *LFSR) step() {
	// Taps 32, 22, 2, 1 (maximal length).
	bit := (l.state >> 31) ^ (l.state >> 21) ^ (l.state >> 1) ^ l.state
	l.state = l.state<<1 | bit&1
}

// Next produces the next test vector: width register steps, one bit per
// input.
func (l *LFSR) Next() vectors.Vector {
	v := make(vectors.Vector, l.width)
	for i := range v {
		l.step()
		if l.state&1 == 1 {
			v[i] = logic.One
		} else {
			v[i] = logic.Zero
		}
	}
	return v
}

// Sequence produces n consecutive vectors.
func (l *LFSR) Sequence(n int) vectors.Sequence {
	seq := make(vectors.Sequence, n)
	for i := range seq {
		seq[i] = l.Next()
	}
	return seq
}

// HoldSequence produces n vectors where each generated vector is held
// (applied repeatedly) for hold time units — the manipulation of the
// paper's reference [3], which improves stuck-at coverage of sequential
// circuits by letting the state settle.
func (l *LFSR) HoldSequence(n, hold int) vectors.Sequence {
	if hold < 1 {
		hold = 1
	}
	seq := make(vectors.Sequence, 0, n)
	for len(seq) < n {
		v := l.Next()
		for h := 0; h < hold && len(seq) < n; h++ {
			seq = append(seq, v)
		}
	}
	return seq
}
