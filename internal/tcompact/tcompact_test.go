package tcompact

import (
	"testing"

	"seqbist/internal/atpg"
	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

func TestCompactPreservesCoverageS27(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	compacted, st := Compact(c, fl, gen.Seq)
	if st.OriginalLen != gen.Seq.Len() || st.CompactedLen != compacted.Len() {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if compacted.Len() > gen.Seq.Len() {
		t.Errorf("compaction grew the sequence: %d -> %d", gen.Seq.Len(), compacted.Len())
	}
	before := fsim.Run(c, fl, gen.Seq)
	after := fsim.Run(c, fl, compacted)
	if after.NumDetected < before.NumDetected {
		t.Errorf("coverage dropped: %d -> %d", before.NumDetected, after.NumDetected)
	}
}

func TestCompactedIsSubsequence(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := vectors.RandomSequence(xrand.New(5), c.NumPIs(), 40)
	compacted, _ := Compact(c, fl, t0)
	// Every vector of the compacted sequence appears in t0 in order.
	ti := 0
	for _, v := range compacted {
		found := false
		for ti < t0.Len() {
			if t0[ti].Equal(v) {
				found = true
				ti++
				break
			}
			ti++
		}
		if !found {
			t.Fatalf("compacted sequence is not an ordered subsequence of T0")
		}
	}
}

func TestCompactReducesRedundantSequence(t *testing.T) {
	// A sequence padded with repeats of its own vectors should shrink.
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	base := vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
	padded := base.Concat(base).Concat(base)
	compacted, st := Compact(c, fl, padded)
	if compacted.Len() >= padded.Len() {
		t.Errorf("no reduction: %d -> %d", padded.Len(), compacted.Len())
	}
	if st.Ratio() >= 1.0 {
		t.Errorf("ratio = %v", st.Ratio())
	}
	// Coverage identical to the padded sequence.
	before := fsim.Run(c, fl, padded)
	after := fsim.Run(c, fl, compacted)
	for i := range fl {
		if before.Detected[i] && !after.Detected[i] {
			t.Errorf("fault %s lost by compaction", fl[i].Name(c))
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	out, st := Compact(c, fl, nil)
	if out.Len() != 0 || st.OriginalLen != 0 || st.CompactedLen != 0 {
		t.Errorf("empty input mishandled: %v %+v", out, st)
	}
}

func TestCompactSyntheticCircuit(t *testing.T) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	t0 := vectors.RandomSequence(xrand.New(11), c.NumPIs(), 80)
	compacted, st := Compact(c, fl, t0)
	before := fsim.Run(c, fl, t0)
	after := fsim.Run(c, fl, compacted)
	if after.NumDetected < before.NumDetected {
		t.Errorf("coverage dropped: %d -> %d", before.NumDetected, after.NumDetected)
	}
	if st.Targets != before.NumDetected {
		t.Errorf("targets %d, want %d", st.Targets, before.NumDetected)
	}
	t.Logf("s298 random T0: %d -> %d vectors (ratio %.2f)",
		st.OriginalLen, st.CompactedLen, st.Ratio())
}

func TestStatsRatio(t *testing.T) {
	if (Stats{}).Ratio() != 0 {
		t.Error("zero stats ratio not 0")
	}
	if (Stats{OriginalLen: 10, CompactedLen: 5}).Ratio() != 0.5 {
		t.Error("ratio wrong")
	}
}
