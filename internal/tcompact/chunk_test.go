package tcompact

import (
	"testing"

	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// TestChunkedRestorationStillCovers stresses the doubling-chunk
// restoration across many random sequences: coverage must never drop,
// whatever the chunk boundaries do.
func TestChunkedRestorationStillCovers(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	rng := xrand.New(123)
	for trial := 0; trial < 10; trial++ {
		t0 := vectors.RandomSequence(rng, c.NumPIs(), 10+rng.Intn(60))
		before := fsim.Run(c, fl, t0)
		compacted, st := Compact(c, fl, t0)
		after := fsim.Run(c, fl, compacted)
		if after.NumDetected < before.NumDetected {
			t.Fatalf("trial %d: coverage %d -> %d", trial, before.NumDetected, after.NumDetected)
		}
		if st.CompactedLen != compacted.Len() {
			t.Fatalf("trial %d: stats mismatch", trial)
		}
		if st.Restorations == 0 && before.NumDetected > 0 {
			t.Fatalf("trial %d: no restoration simulations recorded", trial)
		}
	}
}

// TestCompactIdempotent: compacting an already-compacted sequence keeps
// coverage and cannot grow it.
func TestCompactIdempotent(t *testing.T) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := vectors.RandomSequence(xrand.New(77), c.NumPIs(), 50)
	once, _ := Compact(c, fl, t0)
	twice, _ := Compact(c, fl, once)
	if twice.Len() > once.Len() {
		t.Errorf("second compaction grew the sequence: %d -> %d", once.Len(), twice.Len())
	}
	a := fsim.Run(c, fl, once)
	b := fsim.Run(c, fl, twice)
	if b.NumDetected < a.NumDetected {
		t.Errorf("second compaction lost coverage: %d -> %d", a.NumDetected, b.NumDetected)
	}
}
