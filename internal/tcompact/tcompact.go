// Package tcompact implements vector-restoration static compaction of test
// sequences for synchronous sequential circuits.
//
// It substitutes for the compaction procedure of reference [12] in the
// paper (Pomeranz & Reddy, ICCD 1997), which compacted the STRATEGATE
// sequences used as T0. The restoration principle is the published one:
//
//  1. Fault-simulate T0 and record every fault's first detection time.
//  2. Process faults in decreasing first-detection time. For a fault not
//     yet detected by the restored sequence, restore vectors of T0
//     backwards from its detection time until the restored sequence (the
//     kept vectors in original time order) detects it again.
//  3. After each fault is re-covered, drop all other faults the restored
//     sequence now detects.
//
// The result is a subsequence of T0 (in original order) that detects every
// fault T0 detects, usually considerably shorter.
package tcompact

import (
	"sort"

	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/netlist"
	"seqbist/internal/vectors"
)

// Stats reports the effect of compaction.
type Stats struct {
	OriginalLen  int
	CompactedLen int
	// Targets is the number of faults detected by the original sequence.
	Targets int
	// Restorations counts single-fault restoration simulations (cost).
	Restorations int
}

// Ratio returns CompactedLen / OriginalLen.
func (s Stats) Ratio() float64 {
	if s.OriginalLen == 0 {
		return 0
	}
	return float64(s.CompactedLen) / float64(s.OriginalLen)
}

// Compact returns a compacted version of t0 that detects every fault of fl
// that t0 detects.
func Compact(c *netlist.Circuit, fl []faults.Fault, t0 vectors.Sequence) (vectors.Sequence, Stats) {
	st := Stats{OriginalLen: t0.Len()}
	if t0.Len() == 0 {
		return nil, st
	}
	base := fsim.Run(c, fl, t0)
	st.Targets = base.NumDetected

	// Faults T0 detects, in decreasing detection-time order.
	order := make([]int, 0, base.NumDetected)
	for i := range fl {
		if base.Detected[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if base.DetTime[order[a]] != base.DetTime[order[b]] {
			return base.DetTime[order[a]] > base.DetTime[order[b]]
		}
		return order[a] < order[b]
	})

	kept := make([]bool, t0.Len())
	covered := make([]bool, len(fl))
	single := fsim.NewSingle(c)

	restored := func() vectors.Sequence {
		seq := make(vectors.Sequence, 0, t0.Len())
		for u, k := range kept {
			if k {
				seq = append(seq, t0[u])
			}
		}
		return seq
	}

	for _, fi := range order {
		if covered[fi] {
			continue
		}
		// Restore vectors backwards from udet(fi) until the kept sequence
		// detects fi. Termination: once every vector of T0[0, udet] is
		// restored, the kept sequence has T0[0, udet] as a prefix, which
		// detects fi by definition of udet.
		udet := base.DetTime[fi]
		cur := restored()
		st.Restorations++
		det, _ := single.Detects(fl[fi], cur)
		u := udet
		// Restore in doubling chunks: one verification simulation per
		// chunk instead of per vector keeps compaction of long sequences
		// tractable, at the cost of occasionally restoring a few vectors
		// more than strictly necessary.
		chunk := 1
		for !det {
			added := 0
			for added < chunk {
				for u >= 0 && kept[u] {
					u--
				}
				if u < 0 {
					break
				}
				kept[u] = true
				added++
			}
			if added == 0 {
				break
			}
			cur = restored()
			st.Restorations++
			det, _ = single.Detects(fl[fi], cur)
			chunk *= 2
		}
		covered[fi] = true

		// Drop every other fault the restored sequence now detects.
		var liveIdx []int
		var live []faults.Fault
		for _, fj := range order {
			if !covered[fj] {
				liveIdx = append(liveIdx, fj)
				live = append(live, fl[fj])
			}
		}
		if len(live) > 0 {
			r := fsim.Run(c, live, cur)
			for k := range live {
				if r.Detected[k] {
					covered[liveIdx[k]] = true
				}
			}
		}
	}

	out := restored()
	st.CompactedLen = out.Len()
	return out, st
}
