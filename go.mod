module seqbist

go 1.23
