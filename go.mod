module seqbist

go 1.24
