// Command seqbistd is the BIST-synthesis daemon: a long-lived HTTP
// service that accepts synthesis jobs (registry circuit or uploaded
// .bench netlist plus a generation config), runs the full
// loading-and-expansion pipeline on a worker pool, and serves results
// from a content-addressed cache on resubmission.
//
// Usage:
//
//	seqbistd -addr :8080 -workers 8
//
// API:
//
//	curl -X POST localhost:8080/jobs -d '{"circuit":"s298","config":{"n":8}}'
//	curl localhost:8080/jobs/job-000001
//	curl localhost:8080/jobs/job-000001/result
//	curl -X DELETE localhost:8080/jobs/job-000001
//	curl localhost:8080/healthz
package main

import (
	"flag"
	"fmt"
	"os"

	"seqbist/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "synthesis worker-pool size")
	queue := flag.Int("queue", 64, "pending-job queue capacity")
	cacheSize := flag.Int("cache", 128, "result-cache entries (negative disables)")
	simWorkers := flag.Int("sim-workers", 0, "per-job fault-simulation goroutines (0 = one per CPU)")
	flag.Parse()

	err := service.Serve(*addr, service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		SimParallelism: *simWorkers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqbistd: %v\n", err)
		os.Exit(1)
	}
}
