// Command seqbistd is the BIST-synthesis daemon: a long-lived HTTP
// service that accepts synthesis jobs and batch sweeps (registry circuits
// or uploaded .bench netlists plus a generation config), runs the full
// loading-and-expansion pipeline on a worker pool, serves results from a
// content-addressed cache on resubmission, streams sweep progress as
// NDJSON, and exports operational counters at /metrics.
//
// Usage:
//
//	seqbistd -addr :8080 -workers 8
//
// Several daemons become one cluster by sharing a -data-dir under
// distinct -node-id values: they cooperatively drain a single queue,
// and a SIGKILLed member's in-flight jobs are stolen by survivors once
// its -lease-ttl lapses (see DESIGN.md §10 and scripts/cluster_e2e.sh):
//
//	seqbistd -addr :8080 -data-dir ./cluster -node-id n1 &
//	seqbistd -addr :8081 -data-dir ./cluster -node-id n2 &
//
// With -tenants pointing at a tenant config file, submissions
// authenticate with "Authorization: Bearer <key>", per-tenant quotas
// and rate budgets gate admission, and queued work is claimed by
// weighted fair share instead of strict FIFO (see API.md
// "Multi-tenancy" and scripts/fairness_e2e.sh):
//
//	seqbistd -addr :8080 -data-dir ./d -node-id n1 -tenants tenants.json
//
// API (full reference with schemas in API.md):
//
//	curl -X POST localhost:8080/v1/jobs -d '{"circuit":"s298","config":{"n":8}}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/result
//	curl -X DELETE localhost:8080/v1/jobs/job-000001
//	curl -X POST localhost:8080/v1/sweeps -d '{"circuits":[{"circuit":"s27"},{"circuit":"s298"}],"config":{"n":8}}'
//	curl -N localhost:8080/v1/sweeps/sweep-0001/events   # NDJSON stream
//	curl localhost:8080/metrics
//	curl localhost:8080/healthz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seqbist/internal/bench"
	"seqbist/internal/service"
	"seqbist/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "synthesis worker-pool size")
	queue := flag.Int("queue", 64, "pending-job queue capacity")
	cacheSize := flag.Int("cache", 128, "result-cache entries (negative disables)")
	simWorkers := flag.Int("sim-workers", 0, "per-job fault-simulation goroutines (0 = one per CPU)")
	simLanes := flag.Int("sim-lanes", 0, "per-job fault-simulation packing width: 0 = default 64, or a multiple of 64 (e.g. 128, 256); speed only, results identical")
	maxSweep := flag.Int("max-sweep-members", 0, "max circuits per sweep (0 = default 64)")
	maxBench := flag.Int64("max-bench-bytes", 0, "uploaded .bench size cap in bytes (0 = default 1 MiB, negative = unlimited)")
	maxSignals := flag.Int("max-bench-signals", 0, "uploaded netlist signal cap (0 = default 250k, negative = unlimited)")
	dataDir := flag.String("data-dir", "", "persistence directory: jobs, sweeps, event logs, and results survive restarts and crashes (empty = in-memory only)")
	fsync := flag.Bool("fsync", true, "with -data-dir, fsync the record log after every write (survives power loss; -fsync=false trades that for lower write latency and still survives SIGKILL)")
	compactBytes := flag.Int64("compact-bytes", 0, "with -data-dir, log size that triggers an online compaction round (0 = default 8 MiB, negative disables automatic compaction)")
	staleAfter := flag.Duration("stale-after", 0, "with -data-dir, how long a cluster member may go silent before compaction stops waiting for it and GC reclaims past its watermark (0 = default 30s)")
	nodeID := flag.String("node-id", "", "cluster identity: daemons started with distinct -node-id values on one shared -data-dir cooperatively drain a single queue, stealing a killed member's leases (requires -data-dir)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "with -node-id, how long a claimed job stays fenced to its claimant without renewal")
	rate := flag.Float64("rate", 0, "per-client submissions/second accepted on POST /v1/jobs and /v1/sweeps before answering 429 (0 = unlimited; a tenant's configured rate overrides this for its bucket)")
	rateBurst := flag.Int("rate-burst", 0, "with -rate, token-bucket burst depth (0 = max(1, ceil(rate)))")
	tenantsFile := flag.String("tenants", "", "multi-tenant config file: {\"tenants\":[{\"name\",\"key\",\"weight\",\"priority\",\"max_queued_jobs\",\"max_active_sweeps\",\"rate\",\"rate_burst\"}]}; submissions authenticate with 'Authorization: Bearer <key>' and are scheduled by weighted fair share (empty = single-tenant mode, everything anonymous)")
	defaultStrategy := flag.String("default-strategy", "", "strategy applied to submissions that set none: greedy, restart, anneal, genetic, or race (empty = greedy)")
	probeInterval := flag.Duration("probe-interval", 0, "with -data-dir, how often a degraded daemon probes the store for recovery — also the Retry-After it advertises on 503 (0 = default 2s)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 0, "graceful-shutdown drain bound before in-flight HTTP requests are abandoned (0 = default 10s)")
	faultFlag := flag.String("fault-enospc-flag", "", "TEST ONLY: path of a flag file; while it exists, every store write fails with ENOSPC (drives scripts/chaos_e2e.sh)")
	flag.Parse()

	// Flag validation rides the service's single validation edge (the
	// placeholder circuit satisfies the shape check; real submissions
	// carry their own).
	if err := service.ValidateSpec(service.JobSpec{
		Circuit: "s27",
		Config:  service.GenConfig{Strategy: *defaultStrategy, Lanes: *simLanes},
	}); err != nil {
		fmt.Fprintf(os.Stderr, "seqbistd: invalid flags: %v\n", err)
		os.Exit(1)
	}
	var tenants []service.TenantConfig
	if *tenantsFile != "" {
		f, err := os.Open(*tenantsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbistd: -tenants: %v\n", err)
			os.Exit(1)
		}
		tenants, err = service.ParseTenants(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbistd: -tenants %s: %v\n", *tenantsFile, err)
			os.Exit(1)
		}
	}

	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		SimParallelism:  *simWorkers,
		SimLanes:        *simLanes,
		MaxSweepMembers: *maxSweep,
		BenchLimits:     benchLimits(*maxBench, *maxSignals),
		LeaseTTL:        *leaseTTL,
		RateLimit:       *rate,
		RateBurst:       *rateBurst,
		Tenants:         tenants,
		DefaultStrategy: *defaultStrategy,
		ProbeInterval:   *probeInterval,
		ShutdownTimeout: *shutdownTimeout,
	}
	if *nodeID != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "seqbistd: -node-id requires -data-dir (the cluster coordinates through the shared store)")
			os.Exit(1)
		}
		for _, r := range *nodeID {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
				fmt.Fprintf(os.Stderr, "seqbistd: -node-id %q: only letters, digits, '-' and '_' are allowed (it names records and IDs)\n", *nodeID)
				os.Exit(1)
			}
		}
		cfg.NodeID = *nodeID
	}
	if *dataDir != "" {
		opts := store.Options{
			Dir: *dataDir, Fsync: *fsync, NodeID: cfg.NodeID,
			CompactBytes: *compactBytes, StaleAfter: *staleAfter,
		}
		if *faultFlag != "" {
			opts.FS = store.NewFlagFaultFS(*faultFlag)
		}
		st, err := store.Open(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbistd: opening -data-dir: %v\n", err)
			os.Exit(1)
		}
		// The service owns the store and flushes it on graceful
		// shutdown, after the worker pool drains.
		cfg.Store = st
	}
	if err := service.Serve(*addr, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "seqbistd: %v\n", err)
		os.Exit(1)
	}
}

// benchLimits maps the flag values onto bench.Limits (zero keeps the
// service defaults, negative disables the respective limit).
func benchLimits(maxBytes int64, maxSignals int) bench.Limits {
	lim := bench.UploadLimits
	if maxBytes != 0 {
		lim.MaxBytes = maxBytes
	}
	if maxSignals != 0 {
		lim.MaxSignals = maxSignals
	}
	return lim
}
