// Command seqbist runs the paper's complete flow on one circuit and
// reports what a BIST integrator needs: the selected subsequence set, its
// storage/loading economics versus T0, the on-chip hardware cost, and the
// per-sequence golden MISR signatures.
//
// Usage:
//
//	seqbist -circuit s298 -n 8
//	seqbist -bench mydesign.bench -n 4 -seed 7
//	seqbist -circuit s27 -t0 t0.txt -n 1    # bring your own T0
//	seqbist -serve :8080 -workers 8         # run as the synthesis daemon
//
// -serve starts the same HTTP service as the seqbistd command (see
// internal/service); all one-shot flags are ignored in that mode.
package main

import (
	"flag"
	"fmt"
	"os"

	"seqbist/internal/atpg"
	"seqbist/internal/bench"
	"seqbist/internal/bist"
	"seqbist/internal/core"
	"seqbist/internal/experiments"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/netlist"
	"seqbist/internal/service"
	"seqbist/internal/tcompact"
	"seqbist/internal/vectors"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name from the registry (e.g. s298)")
	benchFile := flag.String("bench", "", "path to a .bench netlist (alternative to -circuit)")
	n := flag.Int("n", 4, "repetition count for the expansion")
	seed := flag.Uint64("seed", 1, "seed for ATPG and Procedure 2")
	t0File := flag.String("t0", "", "optional file with T0 (whitespace-separated vectors); otherwise ATPG generates it")
	skipCompact := flag.Bool("no-compact", false, "skip §3.2 static compaction of S")
	verilogOut := flag.String("verilog", "", "write the on-chip BIST hardware (expander + MISR) as Verilog to this path")
	fsimWorkers := flag.Int("fsim-workers", 0, "fault-simulation goroutines (0 = one per CPU, 1 = serial)")
	serveAddr := flag.String("serve", "", "run as the synthesis daemon on this address instead of one-shot mode")
	serveWorkers := flag.Int("workers", 4, "daemon synthesis worker-pool size (with -serve)")
	flag.Parse()

	if *serveAddr != "" {
		if err := service.Serve(*serveAddr, service.Config{
			Workers:        *serveWorkers,
			SimParallelism: *fsimWorkers,
		}); err != nil {
			fatalf("%v", err)
		}
		return
	}

	c := loadCircuit(*circuit, *benchFile)
	fl := faults.CollapsedUniverse(c)
	fmt.Printf("%s\n", c.Stats())
	fmt.Printf("collapsed stuck-at faults: %d\n\n", len(fl))

	t0 := obtainT0(c, fl, *t0File, *seed)

	cfg := core.Config{N: *n, Seed: *seed, OmissionRestart: true, Parallelism: *fsimWorkers}
	res, err := core.Select(c, fl, t0, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	set := res.Set
	if !*skipCompact {
		set, _ = core.CompactSet(c, fl, res, cfg)
	}
	if missed := core.VerifyCoverage(c, fl, res, set, cfg); len(missed) != 0 {
		fatalf("internal error: %d faults lost by selection", len(missed))
	}

	st := core.StatsOf(set)
	fmt.Printf("T0: %d vectors, detects %d/%d faults\n", t0.Len(), res.NumTargets, len(fl))
	fmt.Printf("selected set S: %d sequences, total %d vectors (%.2f of |T0|), max %d (%.2f of |T0|)\n",
		st.NumSequences, st.TotalLen, float64(st.TotalLen)/float64(t0.Len()),
		st.MaxLen, float64(st.MaxLen)/float64(t0.Len()))
	fmt.Printf("at-speed test length: %d vectors (8n x total)\n\n", 8**n*st.TotalLen)

	var stored []vectors.Sequence
	for _, s := range set {
		stored = append(stored, s.Seq)
	}
	cost := bist.CostOf(c.NumPIs(), *n, stored)
	fmt.Printf("on-chip hardware: %s\n\n", cost)

	sess, err := bist.NewSession(c, stored, *n)
	if err != nil {
		fatalf("%v", err)
	}
	if err := sess.RunGolden(); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("sequences (loaded at tester speed, expanded on-chip):")
	for i, s := range set {
		fmt.Printf("  S%-2d len %-4d window T0[%d,%d] target %s golden MISR %016x\n",
			i+1, s.Seq.Len(), s.UStart, s.UDet, fl[s.TargetFault].Name(c),
			sess.GoldenSignatures()[i])
	}
	fmt.Printf("\ntotal load cycles: %d (loading T0 instead would cost %d)\n",
		sess.LoadCycles(), t0.Len())

	if *verilogOut != "" {
		src, err := bist.GenerateVerilogForSet(c.Name, stored, *n, c.NumPOs())
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*verilogOut, []byte(src), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote BIST hardware RTL to %s\n", *verilogOut)
	}

	run := &experiments.CircuitRun{
		Name: c.Name, TotalFaults: len(fl), DetectedByT0: res.NumTargets,
		T0Len: t0.Len(),
		PerN: []experiments.NRun{{
			N: *n, Before: core.StatsOf(res.Set), After: st, Set: set, Raw: res,
		}},
	}
	fmt.Println()
	fmt.Println(experiments.Figure1(run))
}

func loadCircuit(name, benchFile string) *netlist.Circuit {
	switch {
	case name != "" && benchFile != "":
		fatalf("use either -circuit or -bench, not both")
	case name != "":
		c, err := iscas.Load(name)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		c, err := bench.Parse(f, benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	}
	fatalf("one of -circuit or -bench is required")
	return nil
}

func obtainT0(c *netlist.Circuit, fl []faults.Fault, t0File string, seed uint64) vectors.Sequence {
	if t0File != "" {
		data, err := os.ReadFile(t0File)
		if err != nil {
			fatalf("%v", err)
		}
		t0, err := vectors.ParseSequence(string(data))
		if err != nil {
			fatalf("parsing %s: %v", t0File, err)
		}
		return t0
	}
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: seed, MaxLen: 4000})
	if err != nil {
		fatalf("%v", err)
	}
	t0, st := tcompact.Compact(c, fl, gen.Seq)
	fmt.Printf("ATPG: %d vectors generated, compacted to %d (ratio %.2f)\n\n",
		st.OriginalLen, st.CompactedLen, st.Ratio())
	return t0
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "seqbist: "+format+"\n", args...)
	os.Exit(1)
}
