// Command seqbist runs the paper's complete flow on one circuit and
// reports what a BIST integrator needs: the selected subsequence set, its
// storage/loading economics versus T0, the on-chip hardware cost, and the
// per-sequence golden MISR signatures.
//
// Usage:
//
//	seqbist -circuit s298 -n 8
//	seqbist -bench mydesign.bench -n 4 -seed 7
//	seqbist -circuit s27 -t0 t0.txt -n 1    # bring your own T0
//	seqbist -serve :8080 -workers 8         # run as the synthesis daemon
//
//	# Batch sweep against a daemon: submit, stream progress, print the
//	# Table-3-style summary. -sweep takes registry names and/or .bench
//	# paths; "table3" expands to the paper's twelve circuits.
//	seqbist -sweep s27,s298,mydesign.bench -server http://localhost:8080 -n 8
//	seqbist -sweep table3            # no -server: ephemeral in-process daemon
//
// -serve starts the same HTTP service as the seqbistd command (see
// internal/service); all one-shot flags are ignored in that mode. The
// sweep mode is a thin client over POST /v1/sweeps and its NDJSON event
// stream (see API.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"seqbist/internal/atpg"
	"seqbist/internal/bench"
	"seqbist/internal/bist"
	"seqbist/internal/core"
	"seqbist/internal/experiments"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/netlist"
	"seqbist/internal/service"
	"seqbist/internal/strategy"
	"seqbist/internal/tcompact"
	"seqbist/internal/vectors"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name from the registry (e.g. s298)")
	benchFile := flag.String("bench", "", "path to a .bench netlist (alternative to -circuit)")
	n := flag.Int("n", 4, "repetition count for the expansion")
	seed := flag.Uint64("seed", 1, "seed for ATPG and Procedure 2")
	t0File := flag.String("t0", "", "optional file with T0 (whitespace-separated vectors); otherwise ATPG generates it")
	skipCompact := flag.Bool("no-compact", false, "skip §3.2 static compaction of S")
	verilogOut := flag.String("verilog", "", "write the on-chip BIST hardware (expander + MISR) as Verilog to this path")
	fsimWorkers := flag.Int("fsim-workers", 0, "fault-simulation goroutines (0 = one per CPU, 1 = serial)")
	fsimLanes := flag.Int("fsim-lanes", 0, "fault-simulation packing width: 0 = default 64, or a multiple of 64 (e.g. 128, 256); speed only, results identical")
	serveAddr := flag.String("serve", "", "run as the synthesis daemon on this address instead of one-shot mode")
	serveWorkers := flag.Int("workers", 4, "daemon synthesis worker-pool size (with -serve and -sweep without -server)")
	sweepList := flag.String("sweep", "", "batch sweep: comma-separated registry names and/or .bench paths, or \"table3\"")
	serverURL := flag.String("server", "", "daemon base URL for -sweep (empty = run an ephemeral in-process daemon)")
	maxTrials := flag.Int("max-omission-trials", 0, "bound Procedure 2 omission simulations per subsequence (0 = unlimited; sweeps on big circuits want a bound)")
	stratName := flag.String("strategy", strategy.Default, "synthesis strategy: greedy (the paper baseline), restart, anneal, genetic, or race (run the whole portfolio, keep the cheapest stored set)")
	flag.Parse()

	// Flag validation rides the service's single validation edge (the
	// placeholder circuit satisfies the shape check; the real circuit or
	// bench resolves per mode below).
	if err := service.ValidateSpec(service.JobSpec{
		Circuit: "s27",
		Config: service.GenConfig{
			Strategy:          *stratName,
			Lanes:             *fsimLanes,
			N:                 *n,
			MaxOmissionTrials: *maxTrials,
			Parallelism:       *fsimWorkers,
		},
	}); err != nil {
		fatalf("invalid flags: %v", err)
	}

	if *serveAddr != "" {
		if err := service.Serve(*serveAddr, service.Config{
			Workers:        *serveWorkers,
			SimParallelism: *fsimWorkers,
			SimLanes:       *fsimLanes,
		}); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *sweepList != "" {
		runSweep(*sweepList, *serverURL, service.GenConfig{
			N:                 *n,
			Seed:              *seed,
			MaxOmissionTrials: *maxTrials,
			SkipCompact:       *skipCompact,
			Parallelism:       *fsimWorkers,
			Lanes:             *fsimLanes,
			Strategy:          *stratName,
		}, *serveWorkers)
		return
	}

	c := loadCircuit(*circuit, *benchFile)
	fl := faults.CollapsedUniverse(c)
	fmt.Printf("%s\n", c.Stats())
	fmt.Printf("collapsed stuck-at faults: %d\n\n", len(fl))

	t0 := obtainT0(c, fl, *t0File, *seed)

	cfg := core.Config{N: *n, Seed: *seed, OmissionRestart: true, Parallelism: *fsimWorkers, Lanes: *fsimLanes}
	strat, err := strategy.Get(*stratName)
	if err != nil {
		fatalf("%v", err)
	}
	selOut, err := strat.Select(c, fl, t0, strategy.Config{Core: cfg, SkipCompact: *skipCompact})
	if err != nil {
		fatalf("%v", err)
	}
	res := selOut.Result
	if *stratName != strategy.Default {
		fmt.Printf("strategy %s: %d selection trials, kept %s\n\n", *stratName, selOut.Trials, selOut.Winner)
	}
	set := res.Set
	if !*skipCompact {
		set, _ = core.CompactSet(c, fl, res, cfg)
	}
	if missed := core.VerifyCoverage(c, fl, res, set, cfg); len(missed) != 0 {
		fatalf("internal error: %d faults lost by selection", len(missed))
	}

	st := core.StatsOf(set)
	fmt.Printf("T0: %d vectors, detects %d/%d faults\n", t0.Len(), res.NumTargets, len(fl))
	fmt.Printf("selected set S: %d sequences, total %d vectors (%.2f of |T0|), max %d (%.2f of |T0|)\n",
		st.NumSequences, st.TotalLen, float64(st.TotalLen)/float64(t0.Len()),
		st.MaxLen, float64(st.MaxLen)/float64(t0.Len()))
	fmt.Printf("at-speed test length: %d vectors (8n x total)\n\n", 8**n*st.TotalLen)

	var stored []vectors.Sequence
	for _, s := range set {
		stored = append(stored, s.Seq)
	}
	cost := bist.CostOf(c.NumPIs(), *n, stored)
	fmt.Printf("on-chip hardware: %s\n\n", cost)

	sess, err := bist.NewSession(c, stored, *n)
	if err != nil {
		fatalf("%v", err)
	}
	if err := sess.RunGolden(); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("sequences (loaded at tester speed, expanded on-chip):")
	for i, s := range set {
		fmt.Printf("  S%-2d len %-4d window T0[%d,%d] target %s golden MISR %016x\n",
			i+1, s.Seq.Len(), s.UStart, s.UDet, fl[s.TargetFault].Name(c),
			sess.GoldenSignatures()[i])
	}
	fmt.Printf("\ntotal load cycles: %d (loading T0 instead would cost %d)\n",
		sess.LoadCycles(), t0.Len())

	if *verilogOut != "" {
		src, err := bist.GenerateVerilogForSet(c.Name, stored, *n, c.NumPOs())
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*verilogOut, []byte(src), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote BIST hardware RTL to %s\n", *verilogOut)
	}

	run := &experiments.CircuitRun{
		Name: c.Name, TotalFaults: len(fl), DetectedByT0: res.NumTargets,
		T0Len: t0.Len(),
		PerN: []experiments.NRun{{
			N: *n, Before: core.StatsOf(res.Set), After: st, Set: set, Raw: res,
		}},
	}
	fmt.Println()
	fmt.Println(experiments.Figure1(run))
}

func loadCircuit(name, benchFile string) *netlist.Circuit {
	switch {
	case name != "" && benchFile != "":
		fatalf("use either -circuit or -bench, not both")
	case name != "":
		c, err := iscas.Load(name)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		c, err := bench.Parse(f, benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	}
	fatalf("one of -circuit or -bench is required")
	return nil
}

func obtainT0(c *netlist.Circuit, fl []faults.Fault, t0File string, seed uint64) vectors.Sequence {
	if t0File != "" {
		data, err := os.ReadFile(t0File)
		if err != nil {
			fatalf("%v", err)
		}
		t0, err := vectors.ParseSequence(string(data))
		if err != nil {
			fatalf("parsing %s: %v", t0File, err)
		}
		return t0
	}
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: seed, MaxLen: 4000})
	if err != nil {
		fatalf("%v", err)
	}
	t0, st := tcompact.Compact(c, fl, gen.Seq)
	fmt.Printf("ATPG: %d vectors generated, compacted to %d (ratio %.2f)\n\n",
		st.OriginalLen, st.CompactedLen, st.Ratio())
	return t0
}

// runSweep is the batch-sweep client: build the member list, submit it to
// a daemon (spinning up an ephemeral in-process one when no -server is
// given), stream per-circuit NDJSON progress to stderr, and print the
// aggregated markdown summary to stdout.
func runSweep(list, serverURL string, cfg service.GenConfig, workers int) {
	var refs []service.CircuitRef
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		switch {
		case item == "":
		case item == "table3":
			for _, name := range iscas.TableNames() {
				refs = append(refs, service.CircuitRef{Circuit: name})
			}
		case strings.HasSuffix(item, ".bench"):
			data, err := os.ReadFile(item)
			if err != nil {
				fatalf("%v", err)
			}
			refs = append(refs, service.CircuitRef{Bench: string(data)})
		default:
			refs = append(refs, service.CircuitRef{Circuit: item})
		}
	}
	if len(refs) == 0 {
		fatalf("-sweep: no circuits")
	}

	if serverURL == "" {
		// Ephemeral daemon: same service, loopback listener, torn down on
		// exit. The sweep still exercises the full HTTP path. Upload
		// limits are disabled — the netlists are operator-chosen local
		// files, the same trust level as -bench in one-shot mode.
		svc := service.New(service.Config{
			Workers:     workers,
			BenchLimits: bench.Limits{MaxBytes: -1, MaxSignals: -1},
		})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		srv := &http.Server{Handler: service.NewHandler(svc)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		serverURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "seqbist: ephemeral daemon on %s\n", serverURL)
	}

	cl := &service.Client{BaseURL: serverURL}
	fin, err := cl.RunSweep(context.Background(), service.SweepSpec{Circuits: refs, Config: cfg},
		func(ev service.SweepEvent) error {
			switch ev.Type {
			case "sweep_started":
				fmt.Fprintf(os.Stderr, "sweep %s: %d circuits\n", ev.SweepID, len(refs))
			case "member_update":
				m := ev.Member
				line := fmt.Sprintf("  [%d] %-8s %s", m.Index, m.Circuit, m.State)
				if m.CacheHit {
					line += " (cache hit)"
				}
				if m.State == service.StateDone && m.Result != nil {
					line += fmt.Sprintf("  cov %.2f  |S| %d  tot %d  max %d",
						m.Result.Coverage, m.Result.NumSequences, m.Result.TotalLen, m.Result.MaxLen)
				}
				if m.Error != "" {
					line += "  error: " + m.Error
				}
				fmt.Fprintln(os.Stderr, line)
			}
			return nil
		})
	if err != nil {
		fatalf("sweep: %v", err)
	}
	if fin.Summary == nil {
		fatalf("sweep %s finished without a summary (state %s)", fin.ID, fin.State)
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %s (%d done, %d failed, %d canceled, %d cache hits)\n",
		fin.ID, fin.State, fin.Summary.Done, fin.Summary.Failed, fin.Summary.Canceled, fin.Summary.CacheHits)
	fmt.Println(fin.Summary.Markdown)
	if fin.Summary.Failed > 0 || fin.State != service.StateDone {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "seqbist: "+format+"\n", args...)
	os.Exit(1)
}
