// Command tables regenerates every table and figure of the paper's
// evaluation section (Tables 1-5 and Figure 1).
//
// Tables 1 and 2 are exact reproductions on the embedded s27. Tables 3-5
// and Figure 1 run the full pipeline (ATPG -> T0 compaction ->
// Procedure 1 -> §3.2 compaction) on the benchmark registry; see
// DESIGN.md for the netlist substitution that makes absolute numbers
// differ from the paper while preserving their shape.
//
// Usage:
//
//	tables -table all                 # fast profile, all tables
//	tables -table 3 -profile full     # the full 12-circuit sweep
//	tables -figure 1 -circuits s298
//	tables -table 5 -circuits s27,s298 -ns 2,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"seqbist/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "table to print: 1, 2, 3, 4, 5 or all")
	figure := flag.Int("figure", 0, "figure to print (1), in addition to tables")
	profile := flag.String("profile", "fast", "pipeline profile: fast or full")
	circuits := flag.String("circuits", "", "comma-separated circuit list (overrides profile)")
	ns := flag.String("ns", "", "comma-separated repetition counts (overrides profile)")
	seed := flag.Uint64("seed", 1, "pipeline seed")
	verify := flag.Bool("verify", false, "re-verify coverage of every run (slow)")
	engine := flag.Bool("engine", false, "print the fault-simulation engine's efficiency counters for the run")
	markdown := flag.Bool("md", false, "emit the full paper-vs-measured Markdown report (EXPERIMENTS.md body)")
	strategyStudy := flag.String("strategy-study", "", "compare the synthesis-strategy portfolio (greedy/restart/anneal/genetic) on this circuit and exit")
	studyN := flag.Int("strategy-study-n", 2, "repetition count for -strategy-study")
	flag.Parse()

	if *strategyStudy != "" {
		prof := experiments.FastProfile()
		if *profile == "full" {
			prof = experiments.FullProfile()
		}
		prof.Seed = *seed
		study, err := experiments.StrategyStudy(*strategyStudy, prof, *studyN, nil)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(study.Markdown())
		return
	}

	needPipeline := *figure == 1 || *table == "all" || *markdown ||
		*table == "3" || *table == "4" || *table == "5"

	if *table == "1" || *table == "all" {
		fmt.Println(experiments.Table1())
	}
	if *table == "2" || *table == "all" {
		fmt.Println(experiments.Table2())
	}
	if !needPipeline {
		return
	}

	prof := experiments.FastProfile()
	if *profile == "full" {
		prof = experiments.FullProfile()
	}
	prof.Seed = *seed
	if *circuits != "" {
		prof.Circuits = strings.Split(*circuits, ",")
	}
	if *ns != "" {
		prof.Ns = nil
		for _, s := range strings.Split(*ns, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatalf("invalid -ns entry %q", s)
			}
			prof.Ns = append(prof.Ns, n)
		}
	}

	engineBefore := experiments.EngineStats()
	fmt.Fprintf(os.Stderr, "running pipeline on %v with n in %v...\n", prof.Circuits, prof.Ns)
	prof.Progress = func(name string, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "  %-8s done in %v\n", name, elapsed.Round(time.Millisecond))
	}
	prof.Trace = func(circuit, stage string, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "    %-8s %-24s %v\n", circuit, stage, elapsed.Round(time.Millisecond))
	}
	runs, err := experiments.RunAll(prof)
	if err != nil {
		fatalf("%v", err)
	}
	experiments.SortByName(runs)

	if *markdown {
		fmt.Print(experiments.MarkdownReport(runs))
	}
	if *table == "3" || *table == "all" {
		fmt.Println(experiments.Table3(runs))
	}
	if *table == "4" || *table == "all" {
		fmt.Println(experiments.Table4(runs))
	}
	if *table == "5" || *table == "all" {
		fmt.Println(experiments.Table5(runs))
	}
	if *figure == 1 || *table == "all" {
		for _, r := range runs {
			fmt.Println(experiments.Figure1(r))
		}
	}
	if *engine {
		fmt.Println(experiments.EngineEfficiency(engineBefore, experiments.EngineStats()))
	}
	if *verify {
		if problems := experiments.CoverageCheck(runs); len(problems) > 0 {
			fatalf("coverage check failed: %v", problems)
		}
		fmt.Fprintln(os.Stderr, "coverage check passed: every run re-detects all of T0's faults")
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tables: "+format+"\n", args...)
	os.Exit(1)
}
