// Command atpg generates a deterministic test sequence (T0) for a
// circuit, optionally compacts it by vector restoration, and writes it as
// whitespace-separated vectors suitable for seqbist -t0.
//
// Usage:
//
//	atpg -circuit s344 -o t0.txt
//	atpg -bench design.bench -seed 9 -maxlen 2000 -no-compact
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"seqbist/internal/atpg"
	"seqbist/internal/bench"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/netlist"
	"seqbist/internal/tcompact"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name from the registry")
	benchFile := flag.String("bench", "", "path to a .bench netlist")
	seed := flag.Uint64("seed", 1, "generator seed")
	maxLen := flag.Int("maxlen", 4000, "cap on the raw generated length (0 = unlimited)")
	noCompact := flag.Bool("no-compact", false, "skip vector-restoration compaction")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	c := loadCircuit(*circuit, *benchFile)
	fl := faults.CollapsedUniverse(c)

	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: *seed, MaxLen: *maxLen})
	if err != nil {
		fatalf("%v", err)
	}
	t0 := gen.Seq
	fmt.Fprintf(os.Stderr, "%s: %d faults, generated %d vectors, coverage %.1f%%\n",
		c.Name, len(fl), t0.Len(), 100*gen.Coverage())
	if !*noCompact {
		var st tcompact.Stats
		t0, st = tcompact.Compact(c, fl, t0)
		fmt.Fprintf(os.Stderr, "compacted to %d vectors (ratio %.2f)\n",
			st.CompactedLen, st.Ratio())
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, v := range t0 {
		fmt.Fprintln(w, v)
	}
	if err := w.Flush(); err != nil {
		fatalf("%v", err)
	}
}

func loadCircuit(name, benchFile string) *netlist.Circuit {
	switch {
	case name != "" && benchFile != "":
		fatalf("use either -circuit or -bench, not both")
	case name != "":
		c, err := iscas.Load(name)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		c, err := bench.Parse(f, benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	}
	fatalf("one of -circuit or -bench is required")
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "atpg: "+format+"\n", args...)
	os.Exit(1)
}
