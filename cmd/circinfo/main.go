// Command circinfo prints structural and fault-model statistics of a
// circuit, and can dump the registry's synthetic benchmarks as .bench
// files for inspection with other tools.
//
// Usage:
//
//	circinfo -circuit s382
//	circinfo -bench design.bench
//	circinfo -circuit s298 -dump s298.bench
//	circinfo -list
package main

import (
	"flag"
	"fmt"
	"os"

	"seqbist/internal/bench"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/netlist"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name from the registry")
	benchFile := flag.String("bench", "", "path to a .bench netlist")
	dump := flag.String("dump", "", "write the circuit as .bench to this path")
	list := flag.Bool("list", false, "list the benchmark registry")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %5s %5s %5s %7s %s\n", "name", "PIs", "POs", "DFFs", "gates", "kind")
		for _, spec := range iscas.Specs() {
			kind := "synthetic"
			if !spec.Synthetic {
				kind = "embedded (real netlist)"
			}
			if spec.Scaled() {
				kind += fmt.Sprintf(", scaled from %d gates / %d DFFs",
					spec.PaperGates, spec.PaperDFFs)
			}
			fmt.Printf("%-8s %5d %5d %5d %7d %s\n",
				spec.Name, spec.PIs, spec.POs, spec.DFFs, spec.Gates, kind)
		}
		return
	}

	c := loadCircuit(*circuit, *benchFile)
	st := c.Stats()
	fmt.Println(st)
	fmt.Printf("  depth %d, max fanout %d, max fanin %d\n", st.Depth, st.MaxFanout, st.MaxFanin)
	fmt.Printf("  gate mix:")
	for gt := netlist.Buf; gt <= netlist.Xnor; gt++ {
		if n := st.GateMix[gt]; n > 0 {
			fmt.Printf(" %s=%d", gt, n)
		}
	}
	fmt.Println()
	uni := faults.Universe(c)
	col := faults.CollapsedUniverse(c)
	fmt.Printf("  stuck-at faults: %d total, %d after equivalence collapsing\n", len(uni), len(col))

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := bench.Write(f, c); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  wrote %s\n", *dump)
	}
}

func loadCircuit(name, benchFile string) *netlist.Circuit {
	switch {
	case name != "" && benchFile != "":
		fatalf("use either -circuit or -bench, not both")
	case name != "":
		c, err := iscas.Load(name)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		c, err := bench.Parse(f, benchFile)
		if err != nil {
			fatalf("%v", err)
		}
		return c
	}
	fatalf("one of -circuit or -bench is required (or -list)")
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "circinfo: "+format+"\n", args...)
	os.Exit(1)
}
