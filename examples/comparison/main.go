// Comparison pits the paper's subsequence-expansion scheme against the
// two §1 alternatives on one circuit:
//
//   - loading T0 whole (memory = |T0|, load = |T0|, guaranteed coverage);
//   - partitioning T0 into separately loaded segments (load = |T0|,
//     memory = longest segment, guaranteed coverage);
//   - an LFSR, with and without vector holding (no loading, no
//     guarantee);
//   - the paper's scheme (load < |T0|, memory = longest stored
//     subsequence, guaranteed coverage).
//
// Usage: go run ./examples/comparison [circuit]   (default s298)
package main

import (
	"fmt"
	"log"
	"os"

	"seqbist/internal/atpg"
	"seqbist/internal/baseline"
	"seqbist/internal/core"
	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/iscas"
	"seqbist/internal/report"
	"seqbist/internal/tcompact"
)

func main() {
	name := "s298"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := iscas.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	fl := faults.CollapsedUniverse(c)
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1, MaxLen: 2000})
	if err != nil {
		log.Fatal(err)
	}
	t0, _ := tcompact.Compact(c, fl, gen.Seq)
	base := fsim.Run(c, fl, t0)
	fmt.Printf("%s: %d faults, T0 detects %d with %d vectors\n\n",
		name, len(fl), base.NumDetected, t0.Len())

	tbl := report.New("Test-application schemes compared",
		"scheme", "coverage", "load cycles", "memory (vectors)", "at-speed vectors").
		AlignLeft(0)

	// Load-whole-T0 baseline.
	tbl.AddRow("load T0 whole", report.Itoa(base.NumDetected),
		report.Itoa(t0.Len()), report.Itoa(t0.Len()), report.Itoa(t0.Len()))

	// Partitioning baseline.
	part := baseline.Partition(c, fl, t0)
	tbl.AddRow(fmt.Sprintf("partition T0 (%d segments)", len(part.Boundaries)),
		report.Itoa(part.Coverage), report.Itoa(part.TotalLen),
		report.Itoa(part.MaxLen), report.Itoa(part.TotalLen))

	// The paper's scheme.
	cfg := core.DefaultConfig(8)
	cfg.MaxOmissionTrials = 400
	res, err := core.Select(c, fl, t0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	set, _ := core.CompactSet(c, fl, res, cfg)
	st := core.StatsOf(set)
	atSpeed := 8 * cfg.N * st.TotalLen
	tbl.AddRow(fmt.Sprintf("subsequence expansion (n=%d, %d seqs)", cfg.N, st.NumSequences),
		report.Itoa(res.NumTargets), report.Itoa(st.TotalLen),
		report.Itoa(st.MaxLen), report.Itoa(atSpeed))

	// LFSR baselines get the same at-speed budget as the paper's scheme.
	lfsr := fsim.Run(c, fl, baseline.NewLFSR(c.NumPIs(), 1).Sequence(atSpeed))
	tbl.AddRow("LFSR (same at-speed budget)", report.Itoa(lfsr.NumDetected),
		"0", "0", report.Itoa(atSpeed))
	held := fsim.Run(c, fl, baseline.NewLFSR(c.NumPIs(), 1).HoldSequence(atSpeed, 4))
	tbl.AddRow("LFSR + hold 4 [ref 3]", report.Itoa(held.NumDetected),
		"0", "0", report.Itoa(atSpeed))

	fmt.Println(tbl)
	fmt.Println("coverage is guaranteed (== T0) for the first three schemes; the LFSR rows")
	fmt.Println("show what pseudo-random BIST reaches with the same at-speed budget.")
}
