// Paperwalkthrough replays the worked examples printed in the paper:
//
//   - §2 / Table 1: the expansion of S = (000, 110) with n = 2;
//   - §3.1 / Table 2: the s27 test sequence and its per-time-unit fault
//     detections (our simulator reproduces the distribution exactly);
//   - §3.1: Procedure 2 on the hardest s27 fault — the window T0[6,9]
//     the paper derives, and the shrunken stored sequence;
//   - Procedure 1 + §3.2 on s27 end to end.
package main

import (
	"fmt"
	"log"

	"seqbist/internal/core"
	"seqbist/internal/expand"
	"seqbist/internal/experiments"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
)

func main() {
	fmt.Println(experiments.Table1())
	fmt.Println(experiments.Table2())

	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := experiments.S27T0()

	// §3.1: T' = T0[9,9] = (1011) expands (n=1) to the 8-vector sequence
	// the paper prints.
	tPrime := t0.Subsequence(9, 9)
	fmt.Printf("T0[9,9] = %v\n", tPrime)
	fmt.Printf("T'exp   = %v (paper: 1011 0100 0111 1000 1000 0111 0100 1011)\n\n",
		expand.Expand(tPrime, 1))

	// Procedure 1 with n = 1, as in the walkthrough.
	cfg := core.DefaultConfig(1)
	res, err := core.Select(c, fl, t0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Procedure 1 on s27 (n = 1):")
	for i, s := range res.Set {
		fmt.Printf("  S%d: target %-18s udet=%d window T0[%d,%d] stored %v (+%d faults)\n",
			i+1, fl[s.TargetFault].Name(c), s.UDet, s.UStart, s.UDet, s.Seq, s.NewlyDetected)
	}
	first := res.Set[0]
	fmt.Printf("first window = T0[%d,%d] — the paper derives T0[6,9] = %v\n\n",
		first.UStart, first.UDet, t0.Subsequence(6, 9))

	set, stats := core.CompactSet(c, fl, res, cfg)
	fmt.Printf("§3.2 static compaction: %d -> %d sequences (drops per pass: %v)\n",
		stats.Before.NumSequences, stats.After.NumSequences, stats.Dropped)
	if missed := core.VerifyCoverage(c, fl, res, set, cfg); len(missed) != 0 {
		log.Fatalf("coverage broken: %v", missed)
	}
	total, max := vectors.TotalAndMaxLength(storedOf(set))
	fmt.Printf("coverage preserved: all %d faults; stored %d vectors total, %d max\n",
		res.NumTargets, total, max)
}

func storedOf(set []core.Selected) []vectors.Sequence {
	out := make([]vectors.Sequence, len(set))
	for i, s := range set {
		out[i] = s.Seq
	}
	return out
}
