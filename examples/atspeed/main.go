// Atspeed quantifies the paper's motivation for on-chip expansion: the
// expanded sequences apply 8n at-speed vectors per loaded vector, which
// matters for delay defects. Using the gross-delay transition-fault model
// (internal/tfault), the example compares the transition coverage of T0
// against the expanded selected set, alongside the number of vectors each
// scheme must load.
//
// Usage: go run ./examples/atspeed [circuit]   (default s27)
package main

import (
	"fmt"
	"log"
	"os"

	"seqbist/internal/atpg"
	"seqbist/internal/core"
	"seqbist/internal/expand"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/report"
	"seqbist/internal/tcompact"
	"seqbist/internal/tfault"
	"seqbist/internal/vectors"
)

func main() {
	name := "s27"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := iscas.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	sfl := faults.CollapsedUniverse(c)
	tfl := tfault.Universe(c)

	gen, err := atpg.Generate(c, sfl, atpg.Config{Seed: 1, MaxLen: 1500})
	if err != nil {
		log.Fatal(err)
	}
	t0, _ := tcompact.Compact(c, sfl, gen.Seq)
	fmt.Printf("%s: %d stuck-at faults, %d transition faults, |T0| = %d\n\n",
		name, len(sfl), len(tfl), t0.Len())

	tbl := report.New("At-speed (transition-fault) coverage",
		"scheme", "loaded vectors", "at-speed vectors", "transition coverage").
		AlignLeft(0)
	covT0 := tfault.Coverage(c, tfl, t0)
	tbl.AddRow("T0 applied once", report.Itoa(t0.Len()), report.Itoa(t0.Len()),
		fmt.Sprintf("%d/%d", covT0, len(tfl)))

	for _, n := range []int{2, 8} {
		cfg := core.DefaultConfig(n)
		cfg.MaxOmissionTrials = 400
		res, err := core.Select(c, sfl, t0, cfg)
		if err != nil {
			log.Fatal(err)
		}
		set, _ := core.CompactSet(c, sfl, res, cfg)
		st := core.StatsOf(set)
		var expanded []vectors.Sequence
		for _, s := range set {
			expanded = append(expanded, expand.Expand(s.Seq, n))
		}
		cov := tfault.CoverageOfSet(c, tfl, expanded)
		tbl.AddRow(fmt.Sprintf("expanded set, n=%d", n),
			report.Itoa(st.TotalLen), report.Itoa(8*n*st.TotalLen),
			fmt.Sprintf("%d/%d", cov, len(tfl)))
	}
	fmt.Println(tbl)
	fmt.Println("the expanded sets load a fraction of T0's vectors yet sustain (or exceed)")
	fmt.Println("its transition coverage — the paper's at-speed argument, made measurable.")
}
