// Bisthardware demonstrates the on-chip side of the scheme: the test
// memory, the up/down address counter and multiplexers expanding a stored
// sequence (bit-identical to the functional expansion), a full BIST
// session with golden MISR signatures, and signature-based detection of
// an injected fault.
package main

import (
	"fmt"
	"log"

	"seqbist/internal/bist"
	"seqbist/internal/core"
	"seqbist/internal/expand"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/vectors"
)

func main() {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)

	// The hardware expander versus the functional definition.
	stored := vectors.MustParseSequence("1001 0000")
	mem := bist.NewMemory(c.NumPIs())
	if err := mem.Load(stored); err != nil {
		log.Fatal(err)
	}
	exp := bist.NewExpander(mem, 2)
	var hw vectors.Sequence
	for {
		v, ok := exp.Next()
		if !ok {
			break
		}
		hw = append(hw, v)
	}
	fmt.Printf("stored S = %v (loaded in %d tester cycles)\n", stored, mem.LoadCycles())
	fmt.Printf("hardware expansion: %d vectors\n", hw.Len())
	if hw.Equal(expand.Expand(stored, 2)) {
		fmt.Println("matches expand.Expand(S, 2) exactly")
	} else {
		log.Fatal("hardware expander diverged from the functional expansion")
	}

	// A full session over a real selection.
	t0 := vectors.MustParseSequence("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
	cfg := core.DefaultConfig(2)
	res, err := core.Select(c, fl, t0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	set, _ := core.CompactSet(c, fl, res, cfg)
	var seqs []vectors.Sequence
	for _, s := range set {
		seqs = append(seqs, s.Seq)
	}
	sess, err := bist.NewSession(c, seqs, cfg.N)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.RunGolden(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBIST session: %d sequences, %d load cycles, %d at-speed cycles\n",
		len(seqs), sess.LoadCycles(), sess.AtSpeedCycles())
	fmt.Printf("hardware: %s\n", bist.CostOf(c.NumPIs(), cfg.N, seqs))
	for i, sig := range sess.GoldenSignatures() {
		fmt.Printf("  golden signature S%d: %016x\n", i+1, sig)
	}

	// Signature-based detection.
	detected := 0
	for _, f := range fl {
		if sess.DetectsFault(f) {
			detected++
		}
	}
	fmt.Printf("\nsignature comparison flags %d/%d faults ", detected, len(fl))
	fmt.Println("(sound: every flagged fault is truly detected; X-masking can lose a few)")

	// The paper's encoding remark (§1): run-length encoding shrinks the
	// stored set further if at-speed application can be relaxed.
	fmt.Printf("\nRLE encoding study: %s\n", bist.EncodeSet(seqs, c.NumPIs()))
}
