// Quickstart: the complete seqbist flow on the s27 benchmark in ~40
// lines — generate a test sequence, select subsequences for on-chip
// expansion, verify the coverage guarantee, and print the result.
package main

import (
	"fmt"
	"log"

	"seqbist/internal/atpg"
	"seqbist/internal/core"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/tcompact"
)

func main() {
	// 1. A circuit and its collapsed stuck-at fault list.
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	fmt.Printf("circuit: %v, %d collapsed faults\n", c.Stats(), len(fl))

	// 2. A deterministic test sequence T0 (the off-chip input of the
	// paper's scheme), compacted by vector restoration.
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	t0, _ := tcompact.Compact(c, fl, gen.Seq)
	fmt.Printf("T0: %d vectors, %d/%d faults detected\n", t0.Len(), gen.NumDetected, len(fl))

	// 3. Procedure 1: select subsequences whose on-chip expansions
	// re-detect everything T0 detects, then drop redundant ones (§3.2).
	cfg := core.DefaultConfig(2) // n = 2 repetitions
	res, err := core.Select(c, fl, t0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	set, _ := core.CompactSet(c, fl, res, cfg)

	// 4. The guarantee: nothing was lost.
	if missed := core.VerifyCoverage(c, fl, res, set, cfg); len(missed) != 0 {
		log.Fatalf("coverage broken: %d faults lost", len(missed))
	}

	st := core.StatsOf(set)
	fmt.Printf("selected: %d sequences, %d vectors to load (%.0f%% of T0), max %d stored at once\n",
		st.NumSequences, st.TotalLen, 100*float64(st.TotalLen)/float64(t0.Len()), st.MaxLen)
	for i, s := range set {
		fmt.Printf("  S%d = %v (from T0[%d,%d], target %s)\n",
			i+1, s.Seq, s.UStart, s.UDet, fl[s.TargetFault].Name(c))
	}
}
