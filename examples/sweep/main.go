// Sweep demonstrates the two sweep axes of the system.
//
// Part 1 explores the repetition count n — the scheme's one tuning knob —
// on a single circuit. Larger n makes each expanded sequence longer (more
// at-speed vectors per stored vector), which lets Procedure 2 store
// shorter subsequences but stretches test time. The paper picks the best
// n per circuit from {2,4,8,16}.
//
// Part 2 sweeps across circuits: it starts an in-process synthesis
// service, submits one batch sweep (registry circuits plus the embedded
// s27 uploaded as a raw .bench body), follows the NDJSON event stream,
// and prints the aggregated Table-3-style summary — the same path
// `seqbist -sweep` and POST /v1/sweeps take.
//
// Usage: go run ./examples/sweep [circuit]   (default s298)
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"seqbist/internal/atpg"
	"seqbist/internal/core"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/report"
	"seqbist/internal/service"
	"seqbist/internal/tcompact"
)

func main() {
	name := "s298"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := iscas.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	fl := faults.CollapsedUniverse(c)
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1, MaxLen: 2000})
	if err != nil {
		log.Fatal(err)
	}
	t0, _ := tcompact.Compact(c, fl, gen.Seq)
	fmt.Printf("%s: |T0| = %d, %d/%d faults detected by T0\n\n",
		name, t0.Len(), gen.NumDetected, len(fl))

	tbl := report.New("Repetition-count sweep (after §3.2 compaction)",
		"n", "|S|", "tot len", "tot/T0", "max len", "max/T0", "test len", "memory bits")
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := core.DefaultConfig(n)
		cfg.MaxOmissionTrials = 400
		res, err := core.Select(c, fl, t0, cfg)
		if err != nil {
			log.Fatal(err)
		}
		set, _ := core.CompactSet(c, fl, res, cfg)
		if missed := core.VerifyCoverage(c, fl, res, set, cfg); len(missed) != 0 {
			log.Fatalf("n=%d: coverage broken", n)
		}
		st := core.StatsOf(set)
		tbl.AddRow(
			report.Itoa(n), report.Itoa(st.NumSequences),
			report.Itoa(st.TotalLen), report.Ratio(float64(st.TotalLen)/float64(t0.Len())),
			report.Itoa(st.MaxLen), report.Ratio(float64(st.MaxLen)/float64(t0.Len())),
			report.Itoa(8*n*st.TotalLen), report.Itoa(st.MaxLen*c.NumPIs()))
	}
	fmt.Println(tbl)
	fmt.Println("reading the table: memory (max len) shrinks as n grows; test time (8n x tot) grows.")
	fmt.Println()

	batchSweep()
}

// batchSweep is part 2: one POST /v1/sweeps over several circuits through
// a live (in-process) daemon, streamed as NDJSON.
func batchSweep() {
	svc := service.New(service.Config{Workers: 2, SimParallelism: 1})
	defer svc.Close()
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()
	cl := &service.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}

	fmt.Println("-- batch sweep over the service (3 registry circuits + 1 uploaded .bench) --")
	fin, err := cl.RunSweep(context.Background(), service.SweepSpec{
		Circuits: []service.CircuitRef{
			{Circuit: "s27"},
			{Circuit: "s298"},
			{Circuit: "s344"},
			{Bench: iscas.S27Source}, // a "user" netlist, uploaded inline
		},
		Config: service.GenConfig{N: 4, Seed: 1, ATPGMaxLen: 500, MaxOmissionTrials: 100},
	}, func(ev service.SweepEvent) error {
		if ev.Type == "member_update" && ev.Member.State.Terminal() {
			fmt.Printf("  %-8s %s\n", ev.Member.Circuit, ev.Member.State)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(fin.Summary.Markdown)
}
