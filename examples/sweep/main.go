// Sweep explores the repetition count n — the scheme's one tuning knob.
// Larger n makes each expanded sequence longer (more at-speed vectors per
// stored vector), which lets Procedure 2 store shorter subsequences but
// stretches test time. The paper picks the best n per circuit from
// {2,4,8,16}; this example prints the whole trade-off for one circuit.
//
// Usage: go run ./examples/sweep [circuit]   (default s298)
package main

import (
	"fmt"
	"log"
	"os"

	"seqbist/internal/atpg"
	"seqbist/internal/core"
	"seqbist/internal/faults"
	"seqbist/internal/iscas"
	"seqbist/internal/report"
	"seqbist/internal/tcompact"
)

func main() {
	name := "s298"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := iscas.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	fl := faults.CollapsedUniverse(c)
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1, MaxLen: 2000})
	if err != nil {
		log.Fatal(err)
	}
	t0, _ := tcompact.Compact(c, fl, gen.Seq)
	fmt.Printf("%s: |T0| = %d, %d/%d faults detected by T0\n\n",
		name, t0.Len(), gen.NumDetected, len(fl))

	tbl := report.New("Repetition-count sweep (after §3.2 compaction)",
		"n", "|S|", "tot len", "tot/T0", "max len", "max/T0", "test len", "memory bits")
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := core.DefaultConfig(n)
		cfg.MaxOmissionTrials = 400
		res, err := core.Select(c, fl, t0, cfg)
		if err != nil {
			log.Fatal(err)
		}
		set, _ := core.CompactSet(c, fl, res, cfg)
		if missed := core.VerifyCoverage(c, fl, res, set, cfg); len(missed) != 0 {
			log.Fatalf("n=%d: coverage broken", n)
		}
		st := core.StatsOf(set)
		tbl.AddRow(
			report.Itoa(n), report.Itoa(st.NumSequences),
			report.Itoa(st.TotalLen), report.Ratio(float64(st.TotalLen)/float64(t0.Len())),
			report.Itoa(st.MaxLen), report.Ratio(float64(st.MaxLen)/float64(t0.Len())),
			report.Itoa(8*n*st.TotalLen), report.Itoa(st.MaxLen*c.NumPIs()))
	}
	fmt.Println(tbl)
	fmt.Println("reading the table: memory (max len) shrinks as n grows; test time (8n x tot) grows.")
}
