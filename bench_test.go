// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations over the design choices called out
// in DESIGN.md §5 and micro-benchmarks of the simulation engines.
//
// Naming convention: BenchmarkTable<k>... and BenchmarkFigure1... map to
// the paper's artifacts (see DESIGN.md §4); BenchmarkAblation... are the
// design-choice studies; the rest measure substrate throughput.
//
// Run everything:  go test -bench=. -benchmem .
// One experiment:  go test -bench=BenchmarkTable5 .
package seqbist_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"seqbist/internal/atpg"
	"seqbist/internal/baseline"
	"seqbist/internal/core"
	"seqbist/internal/expand"
	"seqbist/internal/experiments"
	"seqbist/internal/faults"
	"seqbist/internal/fsim"
	"seqbist/internal/iscas"
	"seqbist/internal/netlist"
	"seqbist/internal/service"
	"seqbist/internal/strategy"
	"seqbist/internal/tcompact"
	"seqbist/internal/tfault"
	"seqbist/internal/vectors"
	"seqbist/internal/xrand"
)

// benchSetup caches per-circuit artifacts so benchmarks measure the
// operation under study, not repeated ATPG runs.
type benchSetup struct {
	c  *netlist.Circuit
	fl []faults.Fault
	t0 vectors.Sequence
}

var (
	setupOnce  sync.Once
	setupCache map[string]*benchSetup
)

func setupFor(b *testing.B, name string) *benchSetup {
	b.Helper()
	setupOnce.Do(func() { setupCache = map[string]*benchSetup{} })
	if s, ok := setupCache[name]; ok {
		return s
	}
	c := iscas.MustLoad(name)
	fl := faults.CollapsedUniverse(c)
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1, MaxLen: 1500})
	if err != nil {
		b.Fatal(err)
	}
	t0, _ := tcompact.Compact(c, fl, gen.Seq)
	s := &benchSetup{c: c, fl: fl, t0: t0}
	setupCache[name] = s
	return s
}

// ---------------------------------------------------------------------
// Table 1: the §2 expansion example.

func BenchmarkTable1Expansion(b *testing.B) {
	s := vectors.MustParseSequence("000 110")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := expand.Expand(s, 2); got.Len() != 32 {
			b.Fatal("wrong expansion length")
		}
	}
}

// Table 2: fault simulation of the paper's s27 sequence.

func BenchmarkTable2S27(b *testing.B) {
	c := iscas.S27()
	fl := faults.CollapsedUniverse(c)
	t0 := experiments.S27T0()
	b.ReportAllocs()
	var det int
	for i := 0; i < b.N; i++ {
		res := fsim.Run(c, fl, t0)
		if res.NumDetected != 32 {
			b.Fatalf("detected %d", res.NumDetected)
		}
		det = res.NumDetected
	}
	// The detection count is deterministic; CI diffs it against the
	// committed counts in BENCH_3.json (scripts/bench_check.sh).
	b.ReportMetric(float64(det), "detected")
}

// Table 3: the full per-circuit pipeline (Procedure 1 + §3.2) on a
// representative circuit, measuring what one Table 3 row costs.

func BenchmarkTable3Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunCircuit("s298", experiments.Profile{
			Circuits:          []string{"s298"},
			Ns:                []int{2, 8},
			Seed:              1,
			ATPGMaxLen:        1500,
			MaxOmissionTrials: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		if run.BestRun().After.NumSequences == 0 {
			b.Fatal("empty selection")
		}
	}
}

// Table 4: normalized run time of Procedure 1 — the benchmark reports
// the paper's metric (Procedure 1 time / T0 simulation time) directly.

func BenchmarkTable4NormalizedRuntime(b *testing.B) {
	run, err := experiments.RunCircuit("s298", experiments.Profile{
		Circuits:          []string{"s298"},
		Ns:                []int{4},
		Seed:              1,
		ATPGMaxLen:        1500,
		MaxOmissionTrials: 300,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(run.NormProc1(), "xT0sim/proc1")
	b.ReportMetric(run.NormComp(), "xT0sim/comp")
	s := setupFor(b, "s298")
	cfg := core.DefaultConfig(4)
	cfg.MaxOmissionTrials = 300
	c := iscas.MustLoad("s298")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(c, s.fl, s.t0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 5: the stored-length ratios; reported as custom metrics so a
// bench run prints the paper-comparable numbers.

func BenchmarkTable5Ratios(b *testing.B) {
	prof := experiments.Profile{
		Circuits:          []string{"s27", "s298"},
		Ns:                []int{2, 8},
		Seed:              1,
		ATPGMaxLen:        1500,
		MaxOmissionTrials: 300,
	}
	var tot, max float64
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunAll(prof)
		if err != nil {
			b.Fatal(err)
		}
		tot, max = experiments.AverageRatios(runs)
	}
	b.ReportMetric(tot, "totlen/T0")
	b.ReportMetric(max, "maxlen/T0")
}

// Figure 1: rendering the subsequence window map.

func BenchmarkFigure1WindowMap(b *testing.B) {
	run, err := experiments.RunCircuit("s27", experiments.Profile{
		Circuits: []string{"s27"}, Ns: []int{1}, Seed: 1, ATPGMaxLen: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Figure1(run) == "" {
			b.Fatal("empty figure")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationRepetition sweeps n and reports the stored-length
// metrics per n on s298.
func BenchmarkAblationRepetition(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(benchName("n", n), func(b *testing.B) {
			cfg := core.DefaultConfig(n)
			cfg.MaxOmissionTrials = 300
			var st core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.Select(c, s.fl, s.t0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				set, _ := core.CompactSet(c, s.fl, res, cfg)
				st = core.StatsOf(set)
			}
			b.ReportMetric(float64(st.TotalLen), "totlen")
			b.ReportMetric(float64(st.MaxLen), "maxlen")
		})
	}
}

// BenchmarkAblationTargetOrder compares the paper's max-udet-first fault
// targeting against min-udet and random.
func BenchmarkAblationTargetOrder(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	orders := []struct {
		name string
		ord  core.TargetOrder
	}{
		{"maxudet", core.OrderMaxUDet},
		{"minudet", core.OrderMinUDet},
		{"random", core.OrderRandom},
	}
	for _, o := range orders {
		name, ord := o.name, o.ord
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.MaxOmissionTrials = 300
			cfg.TargetOrder = ord
			var st core.Stats
			var seqs int
			for i := 0; i < b.N; i++ {
				res, err := core.Select(c, s.fl, s.t0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				st = core.StatsOf(res.Set)
				seqs = len(res.Set)
			}
			b.ReportMetric(float64(st.TotalLen), "totlen")
			b.ReportMetric(float64(seqs), "sequences")
		})
	}
}

// BenchmarkAblationOmissionRestart compares the paper-faithful omission
// (restart after every acceptance) with the single-pass variant.
func BenchmarkAblationOmissionRestart(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	for _, mode := range []struct {
		name    string
		restart bool
	}{{"restart", true}, {"singlepass", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.OmissionRestart = mode.restart
			cfg.MaxOmissionTrials = 300
			var st core.Stats
			var sims int
			for i := 0; i < b.N; i++ {
				res, err := core.Select(c, s.fl, s.t0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				st = core.StatsOf(res.Set)
				sims = res.Sims
			}
			b.ReportMetric(float64(st.TotalLen), "totlen")
			b.ReportMetric(float64(sims), "sims")
		})
	}
}

// BenchmarkAblationCompactionPasses measures each §3.2 pass in isolation
// against all four.
func BenchmarkAblationCompactionPasses(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	cfg := core.DefaultConfig(4)
	cfg.MaxOmissionTrials = 300
	res, err := core.Select(c, s.fl, s.t0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name    string
		enabled [4]bool
	}{
		{"pass1_incLen", [4]bool{true, false, false, false}},
		{"pass2_decLen", [4]bool{false, true, false, false}},
		{"pass3_revGen", [4]bool{false, false, true, false}},
		{"pass4_prevDet", [4]bool{false, false, false, true}},
		{"all4", [4]bool{true, true, true, true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var after core.Stats
			for i := 0; i < b.N; i++ {
				set, _ := core.CompactSetPasses(c, s.fl, res, cfg, v.enabled)
				after = core.StatsOf(set)
			}
			b.ReportMetric(float64(after.NumSequences), "sequences")
			b.ReportMetric(float64(after.TotalLen), "totlen")
		})
	}
}

// BenchmarkBaselinePartition measures the §1 partitioning alternative and
// reports its memory requirement (max segment length) next to the
// subsequence scheme's on the same T0.
func BenchmarkBaselinePartition(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	var part baseline.PartitionResult
	for i := 0; i < b.N; i++ {
		part = baseline.Partition(c, s.fl, s.t0)
	}
	b.ReportMetric(float64(part.MaxLen), "partition_maxlen")
	b.ReportMetric(float64(part.TotalLen), "partition_load")

	cfg := core.DefaultConfig(8)
	cfg.MaxOmissionTrials = 300
	res, err := core.Select(c, s.fl, s.t0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	set, _ := core.CompactSet(c, s.fl, res, cfg)
	st := core.StatsOf(set)
	b.ReportMetric(float64(st.MaxLen), "subseq_maxlen")
	b.ReportMetric(float64(st.TotalLen), "subseq_load")
}

// BenchmarkBaselineLFSRCoverage measures pseudo-random coverage at the
// expanded-scheme's at-speed budget (the "no guarantee" comparison).
func BenchmarkBaselineLFSRCoverage(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	budget := 1728 // 8 * n=8 * 27 stored vectors, the comparison example's budget
	var cov int
	for i := 0; i < b.N; i++ {
		r := fsim.Run(c, s.fl, baseline.NewLFSR(c.NumPIs(), 1).Sequence(budget))
		cov = r.NumDetected
	}
	det := fsim.Run(c, s.fl, s.t0)
	b.ReportMetric(float64(cov), "lfsr_detected")
	b.ReportMetric(float64(det.NumDetected), "deterministic_detected")
}

// BenchmarkAblationExpansionOps isolates the §2 manipulations: the
// selection runs with progressively richer expansions, reporting the
// total storage each needs for full coverage.
func BenchmarkAblationExpansionOps(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	variants := []struct {
		name string
		ops  expand.Ops
	}{
		{"repeat", expand.OpRepeat},
		{"repeat_comp", expand.OpRepeat | expand.OpComplement},
		{"repeat_comp_shift", expand.OpRepeat | expand.OpComplement | expand.OpShift},
		{"full", expand.AllOps},
	}
	for _, v := range variants {
		name, ops := v.name, v.ops
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.MaxOmissionTrials = 300
			cfg.ExpandOps = ops
			var st core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.Select(c, s.fl, s.t0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				st = core.StatsOf(res.Set)
			}
			b.ReportMetric(float64(st.TotalLen), "totlen")
			b.ReportMetric(float64(st.MaxLen), "maxlen")
		})
	}
}

// BenchmarkExtensionTransitionCoverage measures the paper's at-speed
// claim with the gross-delay transition-fault model: coverage of T0
// versus the expanded set, reported as metrics.
func BenchmarkExtensionTransitionCoverage(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	tfl := tfault.Universe(c)
	cfg := core.DefaultConfig(4)
	cfg.MaxOmissionTrials = 300
	res, err := core.Select(c, s.fl, s.t0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	set, _ := core.CompactSet(c, s.fl, res, cfg)
	var expanded []vectors.Sequence
	for _, sel := range set {
		expanded = append(expanded, expand.Expand(sel.Seq, cfg.N))
	}
	var covT0, covExp int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covT0 = tfault.Coverage(c, tfl, s.t0)
		covExp = tfault.CoverageOfSet(c, tfl, expanded)
	}
	b.ReportMetric(float64(covT0), "tf_T0")
	b.ReportMetric(float64(covExp), "tf_expanded")
}

// BenchmarkSeedStability runs the s27 pipeline across seeds and reports
// the spread of the headline ratios (reproduction hygiene: the result
// must not be one lucky RNG draw).
func BenchmarkSeedStability(b *testing.B) {
	base := experiments.Profile{
		Circuits:          []string{"s27"},
		Ns:                []int{1, 2},
		ATPGMaxLen:        300,
		MaxOmissionTrials: 100,
	}
	var res *experiments.SeedStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.SeedStudy("s27", base, []uint64{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := 2.0, 0.0
	var sum float64
	for _, r := range res.TotRatios {
		sum += r
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	b.ReportMetric(sum/float64(len(res.TotRatios)), "totratio_mean")
	b.ReportMetric(hi-lo, "totratio_spread")
}

// ---------------------------------------------------------------------
// Service and sharded-simulation benchmarks.

// BenchmarkFaultSimSharded measures the group-sharded parallel scheduler
// against the serial path on a circuit whose fault list spans many
// 64-fault groups; ns/op should drop as workers approach GOMAXPROCS.
// Results are bit-for-bit identical at every worker count.
func BenchmarkFaultSimSharded(b *testing.B) {
	c := iscas.MustLoad("s1423")
	fl := faults.CollapsedUniverse(c)
	seq := vectors.RandomSequence(xrand.New(1), c.NumPIs(), 200)
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			b.ReportMetric(float64((len(fl)+63)/64), "fault_groups")
			var det int
			for i := 0; i < b.N; i++ {
				det = fsim.New(c, fl, fsim.Options{Workers: workers}).Run(seq).NumDetected
			}
			b.ReportMetric(float64(det), "detected")
		})
	}
}

// BenchmarkFaultSimLanes measures the multi-word fault-packing engine:
// the same serial whole-fault-list workload at 64, 128, and 256 lanes
// per group. Wider lanes amortize region-walk and queue overhead across
// more faulty machines per evaluated gate; detections are bit-for-bit
// identical at every width.
func BenchmarkFaultSimLanes(b *testing.B) {
	for _, name := range []string{"s1423", "s5378"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		seq := vectors.RandomSequence(xrand.New(1), c.NumPIs(), 200)
		for _, lanes := range []int{64, 128, 256} {
			b.Run(name+"/"+benchName("lanes", lanes), func(b *testing.B) {
				b.ReportAllocs()
				var det int
				for i := 0; i < b.N; i++ {
					det = fsim.New(c, fl, fsim.Options{Lanes: lanes}).Run(seq).NumDetected
				}
				b.ReportMetric(float64(det), "detected")
			})
		}
	}
}

// BenchmarkServiceThroughput measures end-to-end throughput of the
// synthesis service: each iteration submits a batch of 8 distinct jobs
// and waits for them all. The cache is disabled so every job runs the
// full pipeline; the serial fsim setting keeps the worker pool the only
// source of parallelism.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			svc := service.New(service.Config{
				Workers: workers, QueueDepth: 256, CacheSize: -1, SimParallelism: 1,
			})
			defer svc.Close()
			seed := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]string, 0, 8)
				for k := 0; k < 8; k++ {
					seed++
					st, err := svc.Submit(service.JobSpec{Circuit: "s298", Config: service.GenConfig{
						N: 2, Seed: seed, ATPGMaxLen: 300, MaxOmissionTrials: 40, Parallelism: 1,
					}})
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, st.ID)
				}
				for _, id := range ids {
					waitServiceDone(b, svc, id)
				}
			}
			b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServiceCacheHit measures the content-addressed fast path: a
// resubmission of completed work is served without any synthesis.
func BenchmarkServiceCacheHit(b *testing.B) {
	svc := service.New(service.Config{Workers: 1, SimParallelism: 1})
	defer svc.Close()
	spec := service.JobSpec{Circuit: "s27", Config: service.GenConfig{
		N: 1, Seed: 1, ATPGMaxLen: 300, MaxOmissionTrials: 40, Parallelism: 1,
	}}
	st, err := svc.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	waitServiceDone(b, svc, st.ID)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := svc.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !hit.CacheHit {
			b.Fatal("expected a cache hit")
		}
		if _, err := svc.Result(hit.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func waitServiceDone(b *testing.B, svc *service.Service, id string) {
	b.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := svc.Status(id)
		if err != nil {
			b.Fatal(err)
		}
		if st.State == service.StateDone {
			return
		}
		if st.State.Terminal() {
			b.Fatalf("job %s: state %s, error %q", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("job %s stuck", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkFaultSimParallelVsSerial quantifies the 64-lane speedup.
func BenchmarkFaultSimParallelVsSerial(b *testing.B) {
	s := setupFor(b, "s298")
	c := iscas.MustLoad("s298")
	seq := s.t0
	b.Run("parallel64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fsim.Run(c, s.fl, seq)
		}
	})
	b.Run("serialSingle", func(b *testing.B) {
		single := fsim.NewSingle(c)
		for i := 0; i < b.N; i++ {
			for _, f := range s.fl {
				single.Detects(f, seq)
			}
		}
	})
}

func BenchmarkExpansionThroughput(b *testing.B) {
	s := vectors.RandomSequence(xrand.New(1), 32, 64)
	b.SetBytes(int64(expand.ExpandedLength(64, 8) * 32))
	for i := 0; i < b.N; i++ {
		expand.Expand(s, 8)
	}
}

func BenchmarkExpansionStream(b *testing.B) {
	s := vectors.RandomSequence(xrand.New(1), 32, 64)
	st := expand.NewStream(s, 8)
	b.SetBytes(int64(st.Len() * 32))
	for i := 0; i < b.N; i++ {
		st.Reset()
		for {
			if _, ok := st.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkGoodSimulationThroughput(b *testing.B) {
	s := setupFor(b, "s344")
	c := iscas.MustLoad("s344")
	seq := vectors.RandomSequence(xrand.New(2), c.NumPIs(), 256)
	_ = s
	b.SetBytes(int64(seq.Len()))
	sim := fsim.NewSingle(c)
	f := faults.CollapsedUniverse(c)[0]
	for i := 0; i < b.N; i++ {
		sim.Detects(f, seq)
	}
}

func BenchmarkATPGRound(b *testing.B) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	for i := 0; i < b.N; i++ {
		if _, err := atpg.Generate(c, fl, atpg.Config{Seed: uint64(i), MaxLen: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT0Compaction(b *testing.B) {
	c := iscas.MustLoad("s298")
	fl := faults.CollapsedUniverse(c)
	gen, err := atpg.Generate(c, fl, atpg.Config{Seed: 1, MaxLen: 800})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tcompact.Compact(c, fl, gen.Seq)
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------
// Active-region engine benchmarks (BENCH_3.json; scripts/bench.sh).

// BenchmarkFaultSimLarge measures serial whole-fault-list simulation on
// the largest registry circuits — the Table-3-scale workload the
// active-region engine targets. Serial so the number isolates the
// evaluation engine rather than the sharded scheduler.
func BenchmarkFaultSimLarge(b *testing.B) {
	for _, name := range []string{"s1423", "s5378", "s35932"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		seq := vectors.RandomSequence(xrand.New(1), c.NumPIs(), 200)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var det int
			for i := 0; i < b.N; i++ {
				det = fsim.New(c, fl, fsim.Options{Workers: 1}).Run(seq).NumDetected
			}
			b.ReportMetric(float64(det), "detected")
		})
	}
}

// BenchmarkFaultSimEvaluate measures the non-committing
// candidate-evaluation path — the ATPG inner loop, called thousands of
// times per generation round.
func BenchmarkFaultSimEvaluate(b *testing.B) {
	for _, name := range []string{"s1423", "s5378"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		inc := fsim.New(c, fl, fsim.Options{Workers: 1})
		inc.Extend(vectors.RandomSequence(xrand.New(2), c.NumPIs(), 50))
		cand := vectors.RandomSequence(xrand.New(3), c.NumPIs(), 32)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var det int
			for i := 0; i < b.N; i++ {
				newly, _ := inc.Evaluate(cand)
				det = len(newly)
			}
			b.ReportMetric(float64(det), "detected")
		})
	}
}

// BenchmarkFaultSimSingle measures the two-machine scalar simulator in
// Procedure 2's access pattern: one target fault checked against many
// candidate sequences.
func BenchmarkFaultSimSingle(b *testing.B) {
	for _, name := range []string{"s1423", "s5378"} {
		c := iscas.MustLoad(name)
		fl := faults.CollapsedUniverse(c)
		f := fl[len(fl)/2]
		seq := vectors.RandomSequence(xrand.New(4), c.NumPIs(), 100)
		single := fsim.NewSingle(c)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			det := 0
			for i := 0; i < b.N; i++ {
				if ok, _ := single.Detects(f, seq); ok {
					det = 1
				} else {
					det = 0
				}
			}
			b.ReportMetric(float64(det), "detected")
		})
	}
}

// BenchmarkStrategyPortfolio races the synthesis-strategy portfolio on
// s5378 under a bounded search budget and reports what each strategy's
// trials buy in coverage per kilobit of test memory (max stored length x
// inputs) — the paper's storage-cost currency. Coverage is invariant
// across strategies for a fixed T0, so the metric isolates storage.
func BenchmarkStrategyPortfolio(b *testing.B) {
	s := setupFor(b, "s5378")
	cfg := strategy.Config{Core: core.Config{
		N:                 2,
		Seed:              1,
		OmissionRestart:   true,
		MaxOmissionTrials: 20,
		Parallelism:       runtime.GOMAXPROCS(0),
	}}
	for _, name := range strategy.Concrete() {
		strat, err := strategy.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var st core.Stats
			var cov float64
			trials := 0
			for i := 0; i < b.N; i++ {
				out, err := strat.Select(s.c, s.fl, s.t0, cfg)
				if err != nil {
					b.Fatal(err)
				}
				set, _ := core.CompactSet(s.c, s.fl, out.Result, cfg.Core)
				st = core.StatsOf(set)
				cov = float64(out.Result.NumTargets) / float64(len(s.fl))
				trials = out.Trials
			}
			memKbit := float64(st.MaxLen*s.c.NumPIs()) / 1000
			b.ReportMetric(float64(trials), "trials")
			b.ReportMetric(float64(st.TotalLen), "totlen")
			b.ReportMetric(cov/memKbit, "cov/kbit")
		})
	}
}
